package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Packet is one UDP datagram's worth of gradient: a contiguous coordinate
// range with a self-describing header. Every packet repeats the gradient
// metadata (worker, step, total dimension) — this is the "reliability scheme
// for metadata" of §3.3: no separate metadata channel has to survive loss,
// and the sequence information (Offset) lets the receiver place out-of-order
// packets correctly.
type Packet struct {
	Worker int
	Step   int
	// Loss is the sender's training loss, repeated in every packet like the
	// rest of the gradient metadata so it survives the loss of any strict
	// subset of the datagrams.
	Loss   float64
	Dim    int // total gradient dimension
	Offset int // first coordinate carried
	Coords tensor.Vector
}

// packetHeaderLen is magic u32 | version u8 | worker u32 | step u64 |
// loss f64 | dim u32 | offset u32 | count u32.
const packetHeaderLen = 4 + 1 + 4 + 8 + 8 + 4 + 4 + 4

// DefaultMTU is the conventional Ethernet payload budget for one datagram.
const DefaultMTU = 1400

// MinMTU returns the smallest datagram payload budget that still carries
// the packet header plus one coordinate under codec c. Endpoints must
// reject anything smaller: CoordsPerPacket clamps to one coordinate per
// packet, so a sub-minimum MTU would make every datagram silently exceed
// the configured budget instead of honouring it.
func (c Codec) MinMTU() int {
	return packetHeaderLen + c.BytesPerCoord()
}

// CoordsPerPacket returns how many coordinates fit a datagram of the given
// MTU under codec c.
func (c Codec) CoordsPerPacket(mtu int) int {
	n := (mtu - packetHeaderLen) / c.BytesPerCoord()
	if n < 1 {
		n = 1
	}
	return n
}

// PacketsPerTransfer returns how many datagrams one dim-coordinate
// transfer occupies at the given MTU — the quantity both endpoints of the
// scheduled-loss protocol must agree on (drop masks are indexed by packet
// number), so it lives here rather than being re-derived at each site.
func (c Codec) PacketsPerTransfer(dim, mtu int) int {
	per := c.CoordsPerPacket(mtu)
	count := (dim + per - 1) / per
	if count == 0 {
		count = 1
	}
	return count
}

// CountSurvivors returns how many of the pktCount packets of one transfer
// are not masked out by the scheduled-drop mask (indexes beyond the mask
// survive).
func CountSurvivors(mask []bool, pktCount int) int {
	surv := 0
	for i := 0; i < pktCount; i++ {
		if i >= len(mask) || !mask[i] {
			surv++
		}
	}
	return surv
}

// Split chunks a gradient message into MTU-sized packets.
func (c Codec) Split(m *GradientMsg, mtu int) []Packet {
	per := c.CoordsPerPacket(mtu)
	dim := len(m.Grad)
	out := make([]Packet, 0, c.PacketsPerTransfer(dim, mtu))
	for off := 0; off < dim || (dim == 0 && off == 0); off += per {
		hi := off + per
		if hi > dim {
			hi = dim
		}
		out = append(out, Packet{
			Worker: m.Worker,
			Step:   m.Step,
			Loss:   m.Loss,
			Dim:    dim,
			Offset: off,
			Coords: m.Grad[off:hi],
		})
		if dim == 0 {
			break
		}
	}
	return out
}

// EncodePacket renders a packet as a datagram payload.
func (c Codec) EncodePacket(p *Packet) []byte {
	buf := make([]byte, packetHeaderLen+len(p.Coords)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	binary.LittleEndian.PutUint32(buf[5:], uint32(p.Worker))
	binary.LittleEndian.PutUint64(buf[9:], uint64(p.Step))
	binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(p.Loss))
	binary.LittleEndian.PutUint32(buf[25:], uint32(p.Dim))
	binary.LittleEndian.PutUint32(buf[29:], uint32(p.Offset))
	binary.LittleEndian.PutUint32(buf[33:], uint32(len(p.Coords)))
	c.putCoords(buf[packetHeaderLen:], p.Coords)
	return buf
}

// DecodePacket parses EncodePacket output.
func (c Codec) DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < packetHeaderLen {
		return nil, fmt.Errorf("%w: packet too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad packet magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported packet version %d", ErrBadFrame, buf[4])
	}
	count := int(binary.LittleEndian.Uint32(buf[33:]))
	want := packetHeaderLen + count*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: packet %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	p := &Packet{
		Worker: int(binary.LittleEndian.Uint32(buf[5:])),
		Step:   int(binary.LittleEndian.Uint64(buf[9:])),
		Loss:   math.Float64frombits(binary.LittleEndian.Uint64(buf[17:])),
		Dim:    int(binary.LittleEndian.Uint32(buf[25:])),
		Offset: int(binary.LittleEndian.Uint32(buf[29:])),
		Coords: tensor.NewVector(count),
	}
	if p.Offset < 0 || p.Offset+count > p.Dim {
		return nil, fmt.Errorf("%w: packet range [%d,%d) outside dim %d", ErrBadFrame, p.Offset, p.Offset+count, p.Dim)
	}
	c.getCoords(buf[packetHeaderLen:], p.Coords)
	return p, nil
}

// RecoupPolicy selects what the receive endpoint does about coordinates
// whose packets never arrived (§3.3).
type RecoupPolicy int

const (
	// DropGradient discards the whole gradient if any packet was lost —
	// the straightforward solution, safe with any GAR but wasteful.
	DropGradient RecoupPolicy = iota
	// FillNaN marks lost coordinates NaN for selective averaging.
	FillNaN
	// FillRandom writes random values into lost coordinates and lets the
	// Byzantine-resilient GAR upstairs absorb them — the AggregaThor way.
	FillRandom
)

// String implements fmt.Stringer.
func (p RecoupPolicy) String() string {
	switch p {
	case DropGradient:
		return "drop-gradient"
	case FillNaN:
		return "fill-nan"
	case FillRandom:
		return "fill-random"
	default:
		return fmt.Sprintf("RecoupPolicy(%d)", int(p))
	}
}

// DefaultMaxDim bounds the gradient dimension a reassembler will allocate
// state for: a datagram header is attacker-controlled, and without a bound a
// single spoofed packet claiming Dim ≈ 2³² would make the first Offer
// allocate tens of gigabytes and abort the process — a one-datagram remote
// OOM. The default leaves an order of magnitude of headroom over the
// paper-scale 1.75M-parameter model; endpoints that know their deployment's
// exact dimension should tighten it with SetMaxDim.
const DefaultMaxDim = 1 << 24

// Reassembler collects packets into gradients. One Reassembler serves one
// receive endpoint; it is not safe for concurrent use (wrap externally).
type Reassembler struct {
	policy RecoupPolicy
	rng    *rand.Rand
	maxDim int
	// pending maps (worker, step) to partial gradients.
	pending map[[2]int]*partial
}

type partial struct {
	grad     tensor.Vector
	received []bool // per-coordinate arrival mask
	missing  int
	loss     float64 // metadata repeated in every packet; pinned by the first
}

// NewReassembler builds a reassembler with the given recoup policy. rng is
// required for FillRandom and ignored otherwise.
func NewReassembler(policy RecoupPolicy, rng *rand.Rand) *Reassembler {
	if policy == FillRandom && rng == nil {
		panic("transport: FillRandom requires an rng")
	}
	return &Reassembler{policy: policy, rng: rng, maxDim: DefaultMaxDim, pending: map[[2]int]*partial{}}
}

// SetMaxDim tightens the allocation bound on claimed gradient dimensions
// (default DefaultMaxDim). Endpoints that know the deployment's exact model
// dimension should set it so a spoofed header cannot make them allocate
// anything larger; d <= 0 is ignored.
func (r *Reassembler) SetMaxDim(d int) {
	if d > 0 {
		r.maxDim = d
	}
}

// Offer feeds one packet. When the packet completes its gradient, the
// finished message is returned with done=true and the state released.
//
// Packets whose metadata conflicts with the partial already pending for the
// same (worker, step) key are rejected as malformed, exactly like a packet
// DecodePacket would refuse: a Byzantine worker is free to send two
// self-consistent packets with different Dim values, and before this check
// the second one indexed the first one's arrival mask out of range — a
// remote crash from a single hostile datagram. The same rule covers the
// repeated Loss metadata (compared bitwise so NaN losses stay consistent),
// claimed dimensions beyond the allocation bound (see DefaultMaxDim — a
// spoofed huge Dim must not OOM the process) and, defensively, the
// coordinate range of hand-built packets that never went through
// DecodePacket.
func (r *Reassembler) Offer(p *Packet) (msg *GradientMsg, done bool) {
	if p.Dim < 0 || p.Dim > r.maxDim || p.Offset < 0 || p.Offset+len(p.Coords) > p.Dim {
		return nil, false // malformed range: never index or allocate with it
	}
	key := [2]int{p.Worker, p.Step}
	part, ok := r.pending[key]
	if !ok {
		part = &partial{
			grad:     tensor.NewVector(p.Dim),
			received: make([]bool, p.Dim),
			missing:  p.Dim,
			loss:     p.Loss,
		}
		r.pending[key] = part
	}
	if p.Dim != len(part.received) || math.Float64bits(p.Loss) != math.Float64bits(part.loss) {
		return nil, false // metadata conflicts with the first packet: malformed
	}
	for i, x := range p.Coords {
		idx := p.Offset + i
		if !part.received[idx] {
			part.received[idx] = true
			part.missing--
		}
		part.grad[idx] = x
	}
	if part.missing > 0 {
		return nil, false
	}
	delete(r.pending, key)
	return &GradientMsg{Worker: p.Worker, Step: p.Step, Loss: part.loss, Grad: part.grad}, true
}

// Flush force-completes the pending gradient for (worker, step) using the
// recoup policy: the deadline path when the remaining packets are presumed
// lost. ok=false means nothing was pending, or the policy is DropGradient
// (the partial state is discarded either way).
func (r *Reassembler) Flush(worker, step int) (msg *GradientMsg, ok bool) {
	key := [2]int{worker, step}
	part, exists := r.pending[key]
	if !exists {
		return nil, false
	}
	delete(r.pending, key)
	switch r.policy {
	case DropGradient:
		return nil, false
	case FillNaN:
		for i, got := range part.received {
			if !got {
				part.grad[i] = math.NaN()
			}
		}
	case FillRandom:
		for i, got := range part.received {
			if !got {
				part.grad[i] = r.rng.NormFloat64()
			}
		}
	}
	return &GradientMsg{Worker: worker, Step: step, Loss: part.loss, Grad: part.grad}, true
}

// FlushFill force-completes the pending gradient for (worker, step), writing
// fill(i) into every coordinate i whose packet never arrived, in ascending
// coordinate order. Unlike Flush it bypasses the reassembler-wide policy and
// rng, which is what lets a caller key the recoup values on external state —
// cluster.UDPCluster seeds them per (run seed, step, worker) so a lossy round
// stays a pure function of the configuration. ok=false means nothing was
// pending.
func (r *Reassembler) FlushFill(worker, step int, fill func(coord int) float64) (msg *GradientMsg, ok bool) {
	key := [2]int{worker, step}
	part, exists := r.pending[key]
	if !exists {
		return nil, false
	}
	delete(r.pending, key)
	for i, got := range part.received {
		if !got {
			part.grad[i] = fill(i)
		}
	}
	return &GradientMsg{Worker: worker, Step: step, Loss: part.loss, Grad: part.grad}, true
}

// Discard drops the pending gradient for (worker, step) without delivering
// anything — the DropGradient deadline outcome, independent of the
// reassembler-wide policy. It reports whether a partial was pending.
func (r *Reassembler) Discard(worker, step int) bool {
	key := [2]int{worker, step}
	if _, exists := r.pending[key]; !exists {
		return false
	}
	delete(r.pending, key)
	return true
}

// Missing returns how many coordinates of the pending (worker, step) gradient
// have not arrived yet; ok=false means no partial is pending under that key.
func (r *Reassembler) Missing(worker, step int) (n int, ok bool) {
	part, exists := r.pending[[2]int{worker, step}]
	if !exists {
		return 0, false
	}
	return part.missing, true
}

// Pending returns how many gradients are partially assembled.
func (r *Reassembler) Pending() int { return len(r.pending) }

// DropStale discards every partial older than the given step — housekeeping
// so a silent Byzantine worker cannot grow server memory without bound.
func (r *Reassembler) DropStale(beforeStep int) int {
	dropped := 0
	for key := range r.pending {
		if key[1] < beforeStep {
			delete(r.pending, key)
			dropped++
		}
	}
	return dropped
}
