package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Packet is one UDP datagram's worth of gradient: a contiguous coordinate
// range with a self-describing header. Every packet repeats the gradient
// metadata (worker, step, total dimension) — this is the "reliability scheme
// for metadata" of §3.3: no separate metadata channel has to survive loss,
// and the sequence information (Offset) lets the receiver place out-of-order
// packets correctly.
type Packet struct {
	Worker int
	Step   int
	// Loss is the sender's training loss, repeated in every packet like the
	// rest of the gradient metadata so it survives the loss of any strict
	// subset of the datagrams.
	Loss   float64
	Dim    int // total gradient dimension
	Offset int // first coordinate carried
	Coords tensor.Vector
}

// packetHeaderLen is magic u32 | version u8 | width u8 | worker u32 |
// step u64 | loss f64 | dim u32 | offset u32 | count u32. The width byte
// (wire v4) self-describes the coordinate encoding so endpoint codec
// mismatches decode to ErrWireFormat instead of a silent length-check drop.
const packetHeaderLen = 4 + 1 + 1 + 4 + 8 + 8 + 4 + 4 + 4

// DefaultMTU is the conventional Ethernet payload budget for one datagram.
const DefaultMTU = 1400

// MinMTU returns the smallest datagram payload budget that still carries
// the packet header plus one coordinate under codec c. Endpoints must
// reject anything smaller: CoordsPerPacket clamps to one coordinate per
// packet, so a sub-minimum MTU would make every datagram silently exceed
// the configured budget instead of honouring it.
func (c Codec) MinMTU() int {
	return packetHeaderLen + c.BytesPerCoord()
}

// CoordsPerPacket returns how many coordinates fit a datagram of the given
// MTU under codec c.
func (c Codec) CoordsPerPacket(mtu int) int {
	n := (mtu - packetHeaderLen) / c.BytesPerCoord()
	if n < 1 {
		n = 1
	}
	return n
}

// PacketsPerTransfer returns how many datagrams one dim-coordinate
// transfer occupies at the given MTU — the quantity both endpoints of the
// scheduled-loss protocol must agree on (drop masks are indexed by packet
// number), so it lives here rather than being re-derived at each site.
func (c Codec) PacketsPerTransfer(dim, mtu int) int {
	per := c.CoordsPerPacket(mtu)
	count := (dim + per - 1) / per
	if count == 0 {
		count = 1
	}
	return count
}

// CountSurvivors returns how many of the pktCount packets of one transfer
// are not masked out by the scheduled-drop mask (indexes beyond the mask
// survive).
func CountSurvivors(mask []bool, pktCount int) int {
	surv := 0
	for i := 0; i < pktCount; i++ {
		if i >= len(mask) || !mask[i] {
			surv++
		}
	}
	return surv
}

// Split chunks a gradient message into MTU-sized packets.
func (c Codec) Split(m *GradientMsg, mtu int) []Packet {
	return c.SplitInto(nil, m, mtu)
}

// SplitInto chunks a gradient message into MTU-sized packets, appending to
// dst (which may be a reused scratch slice with dst[:0]) so steady-state
// senders split without allocating. The packets alias m.Grad.
func (c Codec) SplitInto(dst []Packet, m *GradientMsg, mtu int) []Packet {
	per := c.CoordsPerPacket(mtu)
	dim := len(m.Grad)
	out := dst
	if out == nil {
		//aggrevet:alloc cold path for one-shot Split(nil, ...); steady-state senders pass a reused scratch slice
		out = make([]Packet, 0, c.PacketsPerTransfer(dim, mtu))
	}
	for off := 0; off < dim || (dim == 0 && off == 0); off += per {
		hi := off + per
		if hi > dim {
			hi = dim
		}
		//aggrevet:alloc appends within PacketsPerTransfer capacity when the scratch slice is warm; growth is amortized
		out = append(out, Packet{
			Worker: m.Worker,
			Step:   m.Step,
			Loss:   m.Loss,
			Dim:    dim,
			Offset: off,
			Coords: m.Grad[off:hi],
		})
		if dim == 0 {
			break
		}
	}
	return out
}

// PacketWireLen returns the datagram payload size of p on the wire.
func (c Codec) PacketWireLen(p *Packet) int {
	return packetHeaderLen + len(p.Coords)*c.BytesPerCoord()
}

// AppendPacket appends the wire encoding of p to dst and returns the
// extended slice. When dst has enough capacity the encode allocates nothing,
// which is what lets senders reuse one arena across every packet of every
// round (the send-path extension of the gar.Workspace zero-alloc contract).
func (c Codec) AppendPacket(dst []byte, p *Packet) []byte {
	n := len(dst)
	need := c.PacketWireLen(p)
	if cap(dst)-n < need {
		//aggrevet:alloc arena grow path, amortized to zero: SendAllocs CI gate holds the send path at 0 allocs/packet
		grown := make([]byte, n, n+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+need]
	buf := dst[n:]
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = byte(c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[6:], uint32(p.Worker))
	binary.LittleEndian.PutUint64(buf[10:], uint64(p.Step))
	binary.LittleEndian.PutUint64(buf[18:], math.Float64bits(p.Loss))
	binary.LittleEndian.PutUint32(buf[26:], uint32(p.Dim))
	binary.LittleEndian.PutUint32(buf[30:], uint32(p.Offset))
	binary.LittleEndian.PutUint32(buf[34:], uint32(len(p.Coords)))
	c.putCoords(buf[packetHeaderLen:], p.Coords)
	return dst
}

// EncodePacket renders a packet as a freshly allocated datagram payload.
// Steady-state senders should prefer AppendPacket with a reused arena.
func (c Codec) EncodePacket(p *Packet) []byte {
	return c.AppendPacket(make([]byte, 0, c.PacketWireLen(p)), p)
}

// DecodePacket parses EncodePacket output.
func (c Codec) DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < packetHeaderLen {
		return nil, fmt.Errorf("%w: packet too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad packet magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported packet version %d", ErrBadFrame, buf[4])
	}
	if err := c.checkWidth(buf[5]); err != nil {
		return nil, err
	}
	count := int(binary.LittleEndian.Uint32(buf[34:]))
	want := packetHeaderLen + count*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: packet %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	p := &Packet{
		Worker: int(binary.LittleEndian.Uint32(buf[6:])),
		Step:   int(binary.LittleEndian.Uint64(buf[10:])),
		Loss:   math.Float64frombits(binary.LittleEndian.Uint64(buf[18:])),
		Dim:    int(binary.LittleEndian.Uint32(buf[26:])),
		Offset: int(binary.LittleEndian.Uint32(buf[30:])),
		Coords: tensor.NewVector(count),
	}
	if p.Offset < 0 || p.Offset+count > p.Dim {
		return nil, fmt.Errorf("%w: packet range [%d,%d) outside dim %d", ErrBadFrame, p.Offset, p.Offset+count, p.Dim)
	}
	c.getCoords(buf[packetHeaderLen:], p.Coords)
	return p, nil
}

// RecoupPolicy selects what the receive endpoint does about coordinates
// whose packets never arrived (§3.3).
type RecoupPolicy int

const (
	// DropGradient discards the whole gradient if any packet was lost —
	// the straightforward solution, safe with any GAR but wasteful.
	DropGradient RecoupPolicy = iota
	// FillNaN marks lost coordinates NaN for selective averaging.
	FillNaN
	// FillRandom writes random values into lost coordinates and lets the
	// Byzantine-resilient GAR upstairs absorb them — the AggregaThor way.
	FillRandom
)

// String implements fmt.Stringer.
func (p RecoupPolicy) String() string {
	switch p {
	case DropGradient:
		return "drop-gradient"
	case FillNaN:
		return "fill-nan"
	case FillRandom:
		return "fill-random"
	default:
		return fmt.Sprintf("RecoupPolicy(%d)", int(p))
	}
}

// DefaultMaxDim bounds the gradient dimension a reassembler will allocate
// state for: a datagram header is attacker-controlled, and without a bound a
// single spoofed packet claiming Dim ≈ 2³² would make the first Offer
// allocate tens of gigabytes and abort the process — a one-datagram remote
// OOM. The default leaves an order of magnitude of headroom over the
// paper-scale 1.75M-parameter model; endpoints that know their deployment's
// exact dimension should tighten it with SetMaxDim.
const DefaultMaxDim = 1 << 24

// Reassembler collects packets into gradients. One Reassembler serves one
// receive endpoint; it is not safe for concurrent use (wrap externally).
type Reassembler struct {
	policy RecoupPolicy
	rng    *rand.Rand
	maxDim int
	// expectDim, when set, pins the exact gradient dimension the endpoint
	// accepts — packets claiming any other Dim are rejected outright.
	expectDim int
	// evictions counts pending partials rebuilt because a later packet's
	// metadata conflicted with the pinned first packet (see Offer).
	evictions int
	// pending maps (worker, step) to partial gradients.
	pending map[[2]int]*partial
}

type partial struct {
	grad     tensor.Vector
	received []bool // per-coordinate arrival mask
	missing  int
	loss     float64 // metadata repeated in every packet; pinned by the first
}

// NewReassembler builds a reassembler with the given recoup policy. rng is
// required for FillRandom and ignored otherwise.
func NewReassembler(policy RecoupPolicy, rng *rand.Rand) *Reassembler {
	if policy == FillRandom && rng == nil {
		panic("transport: FillRandom requires an rng")
	}
	return &Reassembler{policy: policy, rng: rng, maxDim: DefaultMaxDim, pending: map[[2]int]*partial{}}
}

// SetMaxDim tightens the allocation bound on claimed gradient dimensions
// (default DefaultMaxDim). Endpoints that know the deployment's exact model
// dimension should set it so a spoofed header cannot make them allocate
// anything larger; d <= 0 is ignored.
func (r *Reassembler) SetMaxDim(d int) {
	if d > 0 {
		r.maxDim = d
	}
}

// SetExpectDim pins the exact gradient dimension of the deployment: packets
// claiming any other Dim are rejected before they touch reassembly state,
// and the allocation bound tightens to match. Endpoints that know their
// model dimension (the cluster server and workers do) should always pin it —
// it closes the whole Dim axis of header spoofing. d <= 0 clears the pin.
func (r *Reassembler) SetExpectDim(d int) {
	r.expectDim = d
	if d > 0 {
		r.maxDim = d
	}
}

// Evictions reports how many pending partials were evicted and rebuilt
// because of conflicting packet metadata — nonzero means a peer sent
// self-inconsistent packets for the same (worker, step), i.e. somebody is
// spoofing.
func (r *Reassembler) Evictions() int { return r.evictions }

// Offer feeds one packet. When the packet completes its gradient, the
// finished message is returned with done=true and the state released.
//
// Validation happens in two tiers. Packets that are malformed in isolation —
// claimed dimensions beyond the allocation bound (see DefaultMaxDim — a
// spoofed huge Dim must not OOM the process), a Dim other than the pinned
// SetExpectDim, or a coordinate range that would index the arrival mask out
// of bounds — are rejected outright, exactly like DecodePacket refuses a
// malformed datagram.
//
// Packets that are self-consistent but conflict with the metadata pinned by
// the partial's first packet (Dim, or the repeated Loss compared bitwise so
// NaN losses stay consistent) EVICT the pending partial, and reassembly
// restarts from the conflicting packet. Rejecting the newcomer instead —
// the previous behaviour — let one spoofed datagram racing ahead of an
// honest worker's burst pin garbage metadata under the honest (worker,
// step) key, so every genuine packet was "a conflict" and the honest
// gradient was recouped as lost: a one-datagram censorship of an honest
// worker, violating the f-Byzantine budget. With eviction the spoof costs
// at most the coordinates already banked (the deadline recoup covers them);
// it can no longer wedge the key for the round.
func (r *Reassembler) Offer(p *Packet) (msg *GradientMsg, done bool) {
	if p.Dim < 0 || p.Dim > r.maxDim || p.Offset < 0 || p.Offset+len(p.Coords) > p.Dim {
		return nil, false // malformed range: never index or allocate with it
	}
	if r.expectDim > 0 && p.Dim != r.expectDim {
		return nil, false // deployment dimension is pinned: anything else is spoofed
	}
	key := [2]int{p.Worker, p.Step}
	part, ok := r.pending[key]
	if ok && (p.Dim != len(part.received) || math.Float64bits(p.Loss) != math.Float64bits(part.loss)) {
		ok = false // conflicting metadata: evict and rebuild from this packet
		r.evictions++
	}
	if !ok {
		part = &partial{
			grad:     tensor.NewVector(p.Dim),
			received: make([]bool, p.Dim),
			missing:  p.Dim,
			loss:     p.Loss,
		}
		r.pending[key] = part
	}
	for i, x := range p.Coords {
		idx := p.Offset + i
		if !part.received[idx] {
			part.received[idx] = true
			part.missing--
		}
		part.grad[idx] = x
	}
	if part.missing > 0 {
		return nil, false
	}
	delete(r.pending, key)
	return &GradientMsg{Worker: p.Worker, Step: p.Step, Loss: part.loss, Grad: part.grad}, true
}

// Flush force-completes the pending gradient for (worker, step) using the
// recoup policy: the deadline path when the remaining packets are presumed
// lost. ok=false means nothing was pending, or the policy is DropGradient
// (the partial state is discarded either way).
func (r *Reassembler) Flush(worker, step int) (msg *GradientMsg, ok bool) {
	key := [2]int{worker, step}
	part, exists := r.pending[key]
	if !exists {
		return nil, false
	}
	delete(r.pending, key)
	switch r.policy {
	case DropGradient:
		return nil, false
	case FillNaN:
		for i, got := range part.received {
			if !got {
				part.grad[i] = math.NaN()
			}
		}
	case FillRandom:
		for i, got := range part.received {
			if !got {
				part.grad[i] = r.rng.NormFloat64()
			}
		}
	}
	return &GradientMsg{Worker: worker, Step: step, Loss: part.loss, Grad: part.grad}, true
}

// FlushFill force-completes the pending gradient for (worker, step), writing
// fill(i) into every coordinate i whose packet never arrived, in ascending
// coordinate order. Unlike Flush it bypasses the reassembler-wide policy and
// rng, which is what lets a caller key the recoup values on external state —
// cluster.UDPCluster seeds them per (run seed, step, worker) so a lossy round
// stays a pure function of the configuration. ok=false means nothing was
// pending.
func (r *Reassembler) FlushFill(worker, step int, fill func(coord int) float64) (msg *GradientMsg, ok bool) {
	key := [2]int{worker, step}
	part, exists := r.pending[key]
	if !exists {
		return nil, false
	}
	delete(r.pending, key)
	for i, got := range part.received {
		if !got {
			part.grad[i] = fill(i)
		}
	}
	return &GradientMsg{Worker: worker, Step: step, Loss: part.loss, Grad: part.grad}, true
}

// Discard drops the pending gradient for (worker, step) without delivering
// anything — the DropGradient deadline outcome, independent of the
// reassembler-wide policy. It reports whether a partial was pending.
func (r *Reassembler) Discard(worker, step int) bool {
	key := [2]int{worker, step}
	if _, exists := r.pending[key]; !exists {
		return false
	}
	delete(r.pending, key)
	return true
}

// Missing returns how many coordinates of the pending (worker, step) gradient
// have not arrived yet; ok=false means no partial is pending under that key.
func (r *Reassembler) Missing(worker, step int) (n int, ok bool) {
	part, exists := r.pending[[2]int{worker, step}]
	if !exists {
		return 0, false
	}
	return part.missing, true
}

// Pending returns how many gradients are partially assembled.
func (r *Reassembler) Pending() int { return len(r.pending) }

// DropStale discards every partial older than the given step — housekeeping
// so a silent Byzantine worker cannot grow server memory without bound.
func (r *Reassembler) DropStale(beforeStep int) int {
	dropped := 0
	//aggrevet:ordered every partial below the step is deleted and only counted; the effect is order-independent
	for key := range r.pending {
		if key[1] < beforeStep {
			delete(r.pending, key)
			dropped++
		}
	}
	return dropped
}
