package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Packet is one UDP datagram's worth of gradient: a contiguous coordinate
// range with a self-describing header. Every packet repeats the gradient
// metadata (worker, step, total dimension) — this is the "reliability scheme
// for metadata" of §3.3: no separate metadata channel has to survive loss,
// and the sequence information (Offset) lets the receiver place out-of-order
// packets correctly.
type Packet struct {
	Worker int
	Step   int
	Dim    int // total gradient dimension
	Offset int // first coordinate carried
	Coords tensor.Vector
}

// packetHeaderLen is magic u32 | version u8 | worker u32 | step u64 |
// dim u32 | offset u32 | count u32.
const packetHeaderLen = 4 + 1 + 4 + 8 + 4 + 4 + 4

// DefaultMTU is the conventional Ethernet payload budget for one datagram.
const DefaultMTU = 1400

// CoordsPerPacket returns how many coordinates fit a datagram of the given
// MTU under codec c.
func (c Codec) CoordsPerPacket(mtu int) int {
	n := (mtu - packetHeaderLen) / c.BytesPerCoord()
	if n < 1 {
		n = 1
	}
	return n
}

// Split chunks a gradient message into MTU-sized packets.
func (c Codec) Split(m *GradientMsg, mtu int) []Packet {
	per := c.CoordsPerPacket(mtu)
	dim := len(m.Grad)
	count := (dim + per - 1) / per
	if count == 0 {
		count = 1
	}
	out := make([]Packet, 0, count)
	for off := 0; off < dim || (dim == 0 && off == 0); off += per {
		hi := off + per
		if hi > dim {
			hi = dim
		}
		out = append(out, Packet{
			Worker: m.Worker,
			Step:   m.Step,
			Dim:    dim,
			Offset: off,
			Coords: m.Grad[off:hi],
		})
		if dim == 0 {
			break
		}
	}
	return out
}

// EncodePacket renders a packet as a datagram payload.
func (c Codec) EncodePacket(p *Packet) []byte {
	buf := make([]byte, packetHeaderLen+len(p.Coords)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	binary.LittleEndian.PutUint32(buf[5:], uint32(p.Worker))
	binary.LittleEndian.PutUint64(buf[9:], uint64(p.Step))
	binary.LittleEndian.PutUint32(buf[17:], uint32(p.Dim))
	binary.LittleEndian.PutUint32(buf[21:], uint32(p.Offset))
	binary.LittleEndian.PutUint32(buf[25:], uint32(len(p.Coords)))
	c.putCoords(buf[packetHeaderLen:], p.Coords)
	return buf
}

// DecodePacket parses EncodePacket output.
func (c Codec) DecodePacket(buf []byte) (*Packet, error) {
	if len(buf) < packetHeaderLen {
		return nil, fmt.Errorf("%w: packet too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad packet magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported packet version %d", ErrBadFrame, buf[4])
	}
	count := int(binary.LittleEndian.Uint32(buf[25:]))
	want := packetHeaderLen + count*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: packet %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	p := &Packet{
		Worker: int(binary.LittleEndian.Uint32(buf[5:])),
		Step:   int(binary.LittleEndian.Uint64(buf[9:])),
		Dim:    int(binary.LittleEndian.Uint32(buf[17:])),
		Offset: int(binary.LittleEndian.Uint32(buf[21:])),
		Coords: tensor.NewVector(count),
	}
	if p.Offset < 0 || p.Offset+count > p.Dim {
		return nil, fmt.Errorf("%w: packet range [%d,%d) outside dim %d", ErrBadFrame, p.Offset, p.Offset+count, p.Dim)
	}
	c.getCoords(buf[packetHeaderLen:], p.Coords)
	return p, nil
}

// RecoupPolicy selects what the receive endpoint does about coordinates
// whose packets never arrived (§3.3).
type RecoupPolicy int

const (
	// DropGradient discards the whole gradient if any packet was lost —
	// the straightforward solution, safe with any GAR but wasteful.
	DropGradient RecoupPolicy = iota
	// FillNaN marks lost coordinates NaN for selective averaging.
	FillNaN
	// FillRandom writes random values into lost coordinates and lets the
	// Byzantine-resilient GAR upstairs absorb them — the AggregaThor way.
	FillRandom
)

// String implements fmt.Stringer.
func (p RecoupPolicy) String() string {
	switch p {
	case DropGradient:
		return "drop-gradient"
	case FillNaN:
		return "fill-nan"
	case FillRandom:
		return "fill-random"
	default:
		return fmt.Sprintf("RecoupPolicy(%d)", int(p))
	}
}

// Reassembler collects packets into gradients. One Reassembler serves one
// receive endpoint; it is not safe for concurrent use (wrap externally).
type Reassembler struct {
	policy RecoupPolicy
	rng    *rand.Rand
	// pending maps (worker, step) to partial gradients.
	pending map[[2]int]*partial
}

type partial struct {
	grad     tensor.Vector
	received []bool // per-coordinate arrival mask
	missing  int
}

// NewReassembler builds a reassembler with the given recoup policy. rng is
// required for FillRandom and ignored otherwise.
func NewReassembler(policy RecoupPolicy, rng *rand.Rand) *Reassembler {
	if policy == FillRandom && rng == nil {
		panic("transport: FillRandom requires an rng")
	}
	return &Reassembler{policy: policy, rng: rng, pending: map[[2]int]*partial{}}
}

// Offer feeds one packet. When the packet completes its gradient, the
// finished message is returned with done=true and the state released.
func (r *Reassembler) Offer(p *Packet) (msg *GradientMsg, done bool) {
	key := [2]int{p.Worker, p.Step}
	part, ok := r.pending[key]
	if !ok {
		part = &partial{
			grad:     tensor.NewVector(p.Dim),
			received: make([]bool, p.Dim),
			missing:  p.Dim,
		}
		r.pending[key] = part
	}
	for i, x := range p.Coords {
		idx := p.Offset + i
		if !part.received[idx] {
			part.received[idx] = true
			part.missing--
		}
		part.grad[idx] = x
	}
	if part.missing > 0 {
		return nil, false
	}
	delete(r.pending, key)
	return &GradientMsg{Worker: p.Worker, Step: p.Step, Grad: part.grad}, true
}

// Flush force-completes the pending gradient for (worker, step) using the
// recoup policy: the deadline path when the remaining packets are presumed
// lost. ok=false means nothing was pending, or the policy is DropGradient
// (the partial state is discarded either way).
func (r *Reassembler) Flush(worker, step int) (msg *GradientMsg, ok bool) {
	key := [2]int{worker, step}
	part, exists := r.pending[key]
	if !exists {
		return nil, false
	}
	delete(r.pending, key)
	switch r.policy {
	case DropGradient:
		return nil, false
	case FillNaN:
		for i, got := range part.received {
			if !got {
				part.grad[i] = math.NaN()
			}
		}
	case FillRandom:
		for i, got := range part.received {
			if !got {
				part.grad[i] = r.rng.NormFloat64()
			}
		}
	}
	return &GradientMsg{Worker: worker, Step: step, Grad: part.grad}, true
}

// Pending returns how many gradients are partially assembled.
func (r *Reassembler) Pending() int { return len(r.pending) }

// DropStale discards every partial older than the given step — housekeeping
// so a silent Byzantine worker cannot grow server memory without bound.
func (r *Reassembler) DropStale(beforeStep int) int {
	dropped := 0
	for key := range r.pending {
		if key[1] < beforeStep {
			delete(r.pending, key)
			dropped++
		}
	}
	return dropped
}
