package transport

import (
	"errors"
	"math"
	"time"

	"aggregathor/internal/tensor"
)

// Model-broadcast collection defaults.
const (
	// DefaultBroadcastTimeout bounds the wait for the remaining packets of
	// an in-flight model broadcast. A packet the schedule says survived but
	// that never arrives was genuinely lost (kernel buffer overflow on a
	// large burst) — without this bound the endpoint would pin the torn
	// partial and block until the idle timeout (previously one hour).
	DefaultBroadcastTimeout = 30 * time.Second
	// DefaultModelWindow caps how many distinct future broadcasts a
	// collector buffers while the current one is unsettled. Datagrams are
	// unauthenticated: without a cap, spoofed packets claiming distinct
	// future steps would each pin a maxDim-sized partial indefinitely.
	DefaultModelWindow = 3
)

// ModelEvent is one settled model broadcast, in step order.
type ModelEvent struct {
	// Step is the broadcast's model-update index.
	Step int
	// Params is the assembled model, non-nil only when Complete.
	Params tensor.Vector
	// Complete reports that every packet of the broadcast arrived.
	Complete bool
	// Torn reports a broadcast settled at its scheduled survivors: the
	// remaining packets were dropped by the shared schedule and can never
	// arrive, so the collector settles immediately — no deadline. What to
	// do about the missing coordinates (skip the round, train on a stale
	// model) is the caller's recoup decision.
	Torn bool
	// Lost reports a broadcast the schedule cannot explain: packets that
	// should have survived never arrived within the broadcast timeout
	// (genuine kernel loss or reordering). The partial has been evicted;
	// the caller should not submit for this round and let the server's
	// round deadline absorb it. When the collector catches up over a
	// range of lost broadcasts (a buffered later broadcast already
	// resolved), a single Lost event stands for the whole skipped range.
	Lost bool
}

// ModelCollectorConfig parameterises a ModelCollector.
type ModelCollectorConfig struct {
	// Dim is the model dimension — known statically at both endpoints, so
	// the packet count per broadcast is too.
	Dim int
	// MTU is the datagram payload budget (0 = DefaultMTU).
	MTU int
	// Codec selects the wire coordinate width.
	Codec Codec
	// Schedule returns the downlink drop mask for one broadcast step —
	// mask[i] true means packet i was dropped at the server before the
	// write and can never arrive. nil means the channel is loss-free.
	Schedule func(step int) []bool
	// BroadcastTimeout bounds the wait once a broadcast is in flight
	// (0 = DefaultBroadcastTimeout).
	BroadcastTimeout time.Duration
	// IdleTimeout bounds the wait with no broadcast in flight
	// (0 = one hour, the cluster worker's backstop against a server that
	// vanished without closing the socket).
	IdleTimeout time.Duration
	// Window caps buffered future broadcasts (0 = DefaultModelWindow).
	Window int
}

// ModelCollector drives worker-side reassembly of lossy model broadcasts:
// it pumps packets from the receive endpoint, admits only model-tagged
// datagrams for current-or-future steps, and settles each broadcast the
// moment its fate is known — complete when every packet is in, torn the
// moment all scheduled survivors are in (the schedule is shared with the
// server, so no deadline is needed), lost when the broadcast timeout passes
// on packets the schedule cannot account for.
//
// Unlike the plain RecvModel path it bounds every resource a hostile
// datagram stream could grow: gradient-tagged packets are filtered before
// they reach the reassembler, partials older than the settled step are
// evicted, and at most Window future-step partials are buffered (the
// expected step is always admitted, so spam cannot wedge a legitimate
// broadcast).
type ModelCollector struct {
	recv     *UDPReceiver
	cfg      ModelCollectorConfig
	per      int
	pktCount int
	expected int
	pending  map[int]*modelPending
	queue    []ModelEvent
	// deadline is the wall-clock bound on the in-flight expected broadcast
	// (zero = unarmed). It is a real deadline, not a per-read quiet period:
	// unrelated traffic — later broadcasts, spoofed or gradient-tagged
	// datagrams — keeps arriving in a live cluster and must not be able to
	// postpone the genuine-loss eviction indefinitely.
	deadline time.Time
	// Single-entry memo for dropMask: advance() consults the expected
	// step's mask on every received packet, and at paper scale one
	// schedule evaluation draws pktCount RNG values.
	maskStep int
	maskVal  []bool
	maskSurv int
}

type modelPending struct {
	mask []bool // scheduled drop mask (nil = loss-free)
	// lost is the scheduled lost-coordinate count: the broadcast is torn-
	// resolved the moment the reassembler's missing count equals it — the
	// same invariant the server uses (missing == lostCoords) on the
	// gradient uplink, so no parallel packet bookkeeping is needed.
	lost int

	// Resolved outcome, stashed until expected reaches this step. A future
	// broadcast resolving is NOT taken as proof the server skipped ahead —
	// a single spoofed datagram could otherwise fast-forward the worker
	// past every legitimate round. Only the bounded per-broadcast timeout
	// advances past an unresolved expected step.
	params tensor.Vector // complete broadcast (non-nil)
	torn   bool          // settled at its scheduled survivors
}

func (p *modelPending) resolved() bool { return p.params != nil || p.torn }

// NewModelCollector builds a collector over the receive endpoint. The
// receiver's reassembler is driven exclusively through the collector from
// then on.
func NewModelCollector(r *UDPReceiver, cfg ModelCollectorConfig) *ModelCollector {
	if cfg.MTU <= 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.BroadcastTimeout <= 0 {
		cfg.BroadcastTimeout = DefaultBroadcastTimeout
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = time.Hour
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultModelWindow
	}
	return &ModelCollector{
		recv:     r,
		cfg:      cfg,
		per:      cfg.Codec.CoordsPerPacket(cfg.MTU),
		pktCount: cfg.Codec.PacketsPerTransfer(cfg.Dim, cfg.MTU),
		pending:  map[int]*modelPending{},
		maskStep: -1,
	}
}

// dropMask evaluates the shared schedule for one step and counts survivors
// (memoised per step — the schedule is a pure function).
func (mc *ModelCollector) dropMask(step int) ([]bool, int) {
	if mc.cfg.Schedule == nil {
		return nil, mc.pktCount
	}
	if step != mc.maskStep {
		mc.maskStep = step
		mc.maskVal = mc.cfg.Schedule(step)
		mc.maskSurv = CountSurvivors(mc.maskVal, mc.pktCount)
	}
	return mc.maskVal, mc.maskSurv
}

// advance skips broadcasts whose every packet is a scheduled drop: no
// datagram for them will ever arrive, so there is nothing to wait for and
// nothing to report (the server, evaluating the same schedule, recoups
// those rounds without waiting either).
func (mc *ModelCollector) advance() {
	for {
		if _, surv := mc.dropMask(mc.expected); surv > 0 {
			return
		}
		mc.expected++
	}
}

// Next blocks until the next broadcast settles and returns it. Broadcasts
// are reported in step order; fully-scheduled-away steps are skipped
// silently. The error is ErrTimeout when the idle timeout passes with no
// broadcast in flight, or the socket error when the endpoint is closed.
func (mc *ModelCollector) Next() (*ModelEvent, error) {
	for {
		if len(mc.queue) > 0 {
			ev := mc.queue[0]
			mc.queue = mc.queue[1:]
			return &ev, nil
		}
		mc.advance()
		timeout := mc.cfg.IdleTimeout
		if len(mc.pending) > 0 {
			// Arm (or keep) the wall-clock bound on the in-flight
			// broadcast. time.Until — not a fresh BroadcastTimeout per
			// read — so a stream of ignorable datagrams cannot postpone
			// the genuine-loss eviction forever.
			if mc.deadline.IsZero() {
				mc.deadline = time.Now().Add(mc.cfg.BroadcastTimeout)
			}
			timeout = time.Until(mc.deadline)
		} else {
			mc.deadline = time.Time{}
		}
		var pkt *Packet
		var err error
		if timeout <= 0 {
			err = ErrTimeout
		} else {
			pkt, err = mc.recv.RecvPacket(timeout)
		}
		if err != nil {
			if errors.Is(err, ErrTimeout) && len(mc.pending) > 0 {
				// Bounded per-broadcast wait: packets the schedule says
				// survived never arrived — genuine loss. Declare the
				// expected broadcast lost (one coalesced Lost event) and
				// evict its partial instead of pinning it until the idle
				// timeout. If a LATER broadcast already resolved in the
				// buffer, jump straight to it: a fully settled broadcast
				// is proof the server moved past everything older, and a
				// suspected worker must catch up faster than the server's
				// round cadence to ever rejoin. With no such evidence,
				// advance exactly one step, so a hostile datagram stream
				// cannot fast-forward the worker.
				if p := mc.pending[mc.expected]; p != nil {
					mc.recv.Reassembler().Discard(ModelWorkerID, mc.expected)
					delete(mc.pending, mc.expected)
				}
				mc.queue = append(mc.queue, ModelEvent{Step: mc.expected, Lost: true})
				target := -1
				//aggrevet:ordered computes the minimum resolved step, an order-independent reduction
				for s, p := range mc.pending {
					if s > mc.expected && p.resolved() && (target < 0 || s < target) {
						target = s
					}
				}
				if target >= 0 {
					//aggrevet:ordered every pre-target entry is discarded regardless of visit order
					for s, p := range mc.pending {
						if s < target {
							if !p.resolved() {
								mc.recv.Reassembler().Discard(ModelWorkerID, s)
							}
							delete(mc.pending, s)
						}
					}
					mc.expected = target
				} else {
					mc.expected++
				}
				mc.deadline = time.Time{} // progress: re-arm for the next broadcast
				mc.flushResolved()
				continue
			}
			return nil, err
		}
		if pkt.Worker != ModelWorkerID {
			continue // gradient-tagged spoof on the model endpoint
		}
		if pkt.Dim != mc.cfg.Dim {
			continue // wrong dimension for the deployment: spoofed
		}
		if math.Float64bits(pkt.Loss) != 0 {
			// Model broadcasts carry no loss metadata — the server always
			// sends Loss 0 — so a nonzero loss marks a spoof. Filtering it
			// here (bitwise, so a NaN cannot slip through) matters since the
			// reassembler evicts-and-rebuilds on metadata conflicts: without
			// the filter one hostile datagram with garbage Loss could evict
			// a genuine in-flight broadcast partial.
			continue
		}
		s := pkt.Step
		if s < mc.expected {
			continue // late duplicate of an already-settled broadcast
		}
		// Model packets follow a rigid grid — offset idx·per, full-size
		// except the tail. Anything else cannot have come from the
		// server's Split: reject it before it reaches the reassembler.
		if pkt.Offset%mc.per != 0 {
			continue
		}
		idx := pkt.Offset / mc.per
		want := mc.per
		if idx == mc.pktCount-1 {
			want = mc.cfg.Dim - idx*mc.per
		}
		if idx >= mc.pktCount || len(pkt.Coords) != want {
			continue
		}
		p := mc.pending[s]
		if p == nil {
			mask, surv := mc.dropMask(s)
			if surv == 0 {
				continue // schedule says nothing of step s can arrive: spoofed
			}
			if s != mc.expected && len(mc.pending) >= mc.cfg.Window {
				continue // future-broadcast cap; the expected step always admits
			}
			p = &modelPending{mask: mask, lost: mc.lostCoords(mask)}
			mc.pending[s] = p
		}
		if p.resolved() {
			continue // duplicate after resolution
		}
		if p.mask != nil && idx < len(p.mask) && p.mask[idx] {
			// The schedule dropped this index at the server before the
			// write, so no genuine datagram for it exists. Rejecting the
			// spoof here keeps attacker coordinates out of the masked
			// region of a torn broadcast (which could otherwise complete
			// in the reassembler and masquerade as a loss-free delivery)
			// and makes the reassembler's missing count a faithful
			// survivor tally.
			continue
		}
		asm := mc.recv.Reassembler()
		msg, done := asm.Offer(pkt)
		switch {
		case done:
			p.params = msg.Grad
		default:
			// Same invariant as the server's uplink settlement: once the
			// missing count equals the scheduled lost-coordinate count,
			// every survivor is in and the rest can never arrive. Resolve
			// torn now — no deadline. (Spoofed packets the reassembler
			// rejects leave the missing count untouched, so they cannot
			// fake this.)
			if missing, ok := asm.Missing(ModelWorkerID, s); ok && p.lost > 0 && missing == p.lost {
				asm.Discard(ModelWorkerID, s)
				p.torn = true
			}
		}
		mc.flushResolved()
	}
}

// lostCoords returns how many coordinates of one broadcast the scheduled
// drop mask removes — the torn-resolution threshold for the reassembler's
// missing count.
func (mc *ModelCollector) lostCoords(mask []bool) int {
	lost := 0
	for idx := 0; idx < mc.pktCount; idx++ {
		if idx < len(mask) && mask[idx] {
			w := mc.cfg.Dim - idx*mc.per
			if w > mc.per {
				w = mc.per
			}
			lost += w
		}
	}
	return lost
}

// flushResolved settles broadcasts strictly in step order: while the
// expected step's outcome is known, pop it into the event queue and move
// on (skipping steps the schedule dropped entirely). Future broadcasts
// stay stashed until the expected step resolves or times out.
func (mc *ModelCollector) flushResolved() {
	for {
		mc.advance()
		p := mc.pending[mc.expected]
		if p == nil || !p.resolved() {
			return
		}
		ev := ModelEvent{Step: mc.expected}
		if p.params != nil {
			ev.Complete, ev.Params = true, p.params
		} else {
			ev.Torn = true
		}
		delete(mc.pending, mc.expected)
		mc.queue = append(mc.queue, ev)
		mc.expected++
		mc.deadline = time.Time{} // progress: next broadcast gets a fresh bound
	}
}

// Pending exposes the number of partially assembled broadcasts the
// collector is tracking (tests assert the hostile-spam bound).
func (mc *ModelCollector) Pending() int { return len(mc.pending) }
