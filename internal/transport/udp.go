package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"
)

// ErrTimeout is returned by UDPReceiver.RecvGradient when the deadline
// passes with nothing deliverable under the recoup policy.
var ErrTimeout = errors.New("transport: udp receive timeout")

// UDPSender pushes gradients as datagrams — the lossyMPI send endpoint. An
// optional artificial DropRate reproduces the paper's tc-based loss
// injection (loopback links do not drop on their own).
type UDPSender struct {
	conn     *net.UDPConn
	codec    Codec
	mtu      int
	dropRate float64
	rng      *rand.Rand

	// Pacing state: a datagram burst larger than the receiver's kernel
	// buffer is silently truncated by the kernel (the "loss-free" channel
	// genuinely drops). SetPacing bounds the burst rate.
	paceBurst int
	paceDelay time.Duration
	burstAcc  int
}

// DialUDP creates a sender toward addr with an artificial drop rate in
// [0, 1) applied before the socket write. The MTU must fit at least the
// packet header plus one coordinate (Codec.MinMTU); zero selects
// DefaultMTU.
func DialUDP(addr string, codec Codec, mtu int, dropRate float64, seed int64) (*UDPSender, error) {
	if dropRate < 0 || dropRate >= 1 {
		return nil, fmt.Errorf("transport: drop rate %v out of [0,1)", dropRate)
	}
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	if mtu < codec.MinMTU() {
		return nil, fmt.Errorf("transport: mtu %d below the minimum %d (packet header + one coordinate)",
			mtu, codec.MinMTU())
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %s: %w", addr, err)
	}
	return &UDPSender{
		conn:     conn,
		codec:    codec,
		mtu:      mtu,
		dropRate: dropRate,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// ModelWorkerID tags datagrams carrying a model broadcast instead of a
// worker gradient (footnote 12: "our setup can be easily extended to support
// an unreliable communication for the model transfer"). Model broadcasts use
// a dedicated receiver socket so they never interleave with gradients.
const ModelWorkerID = 1<<30 - 1

// SendModel pushes a model broadcast over the lossy channel by reusing the
// gradient chunking with the reserved ModelWorkerID.
func (s *UDPSender) SendModel(m *ModelMsg) error {
	return s.SendGradient(&GradientMsg{Worker: ModelWorkerID, Step: m.Step, Grad: m.Params})
}

// SendGradient splits the gradient into datagrams and writes the survivors.
func (s *UDPSender) SendGradient(m *GradientMsg) error {
	for _, p := range s.codec.Split(m, s.mtu) {
		if s.dropRate > 0 && s.rng.Float64() < s.dropRate {
			continue // the tc stand-in: this datagram "was lost"
		}
		if err := s.SendPacket(&p); err != nil {
			return err
		}
	}
	return nil
}

// SetPacing rate-limits the sender: after every burstBytes of datagram
// payload written, the sender sleeps for delay so the receiver can drain its
// kernel buffer. Without pacing, a paper-scale broadcast (d = 1.75M ≈ 14 MB
// of datagrams) written back-to-back overflows any realistic SO_RCVBUF — the
// kernel silently discards the excess, turning the nominally loss-free
// channel into a lossy one. Pacing changes only timing, never content, so
// deterministic trajectories are unaffected. burstBytes <= 0 disables
// pacing.
func (s *UDPSender) SetPacing(burstBytes int, delay time.Duration) {
	s.paceBurst = burstBytes
	s.paceDelay = delay
	s.burstAcc = 0
}

// SendPacket writes one already-split packet, bypassing the sender's own
// drop injection. Callers that key loss on external state — the UDP cluster
// backend drops per a (seed, step, worker)-derived schedule so both
// endpoints can evaluate it — split with Codec.Split and push the surviving
// packets through here.
func (s *UDPSender) SendPacket(p *Packet) error {
	buf := s.codec.EncodePacket(p)
	if _, err := s.conn.Write(buf); err != nil {
		return fmt.Errorf("transport: udp write: %w", err)
	}
	if s.paceBurst > 0 {
		s.burstAcc += len(buf)
		if s.burstAcc >= s.paceBurst {
			s.burstAcc = 0
			time.Sleep(s.paceDelay)
		}
	}
	return nil
}

// Close releases the socket.
func (s *UDPSender) Close() error { return s.conn.Close() }

// UDPReceiver assembles datagrams back into gradients with a recoup policy —
// the lossyMPI receive endpoint.
type UDPReceiver struct {
	conn  *net.UDPConn
	codec Codec
	asm   *Reassembler
	buf   []byte
}

// ListenUDP binds a receive endpoint on addr ("127.0.0.1:0" for tests).
func ListenUDP(addr string, codec Codec, policy RecoupPolicy, seed int64) (*UDPReceiver, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	// Large receive buffer: a full gradient arrives as a burst. The kernel
	// caps this request at net.core.rmem_max (often well below 8 MB), so
	// large transfers additionally rely on sender pacing — see
	// UDPSender.SetPacing.
	_ = conn.SetReadBuffer(8 << 20)
	return &UDPReceiver{
		conn:  conn,
		codec: codec,
		asm:   NewReassembler(policy, rand.New(rand.NewSource(seed))),
		buf:   make([]byte, 65536),
	}, nil
}

// Addr returns the bound address.
func (r *UDPReceiver) Addr() string { return r.conn.LocalAddr().String() }

// SetReadBuffer adjusts the socket receive buffer. The kernel caps the
// request at net.core.rmem_max, so a large buffer alone cannot absorb a
// paper-scale broadcast burst — senders must pace (UDPSender.SetPacing).
// Tests force it small to reproduce kernel drops deterministically.
func (r *UDPReceiver) SetReadBuffer(bytes int) error { return r.conn.SetReadBuffer(bytes) }

// RecvGradient blocks until one gradient completes or the timeout passes.
// On timeout, pending partial gradients are recouped per the policy; if the
// policy is DropGradient (or nothing was pending) ErrTimeout is returned.
func (r *UDPReceiver) RecvGradient(timeout time.Duration) (*GradientMsg, error) {
	deadline := time.Now().Add(timeout)
	for {
		if err := r.conn.SetReadDeadline(deadline); err != nil {
			return nil, fmt.Errorf("transport: set deadline: %w", err)
		}
		n, _, err := r.conn.ReadFromUDP(r.buf)
		if err != nil {
			if isTimeout(err) {
				return r.flushAny()
			}
			return nil, fmt.Errorf("transport: udp read: %w", err)
		}
		pkt, err := r.codec.DecodePacket(r.buf[:n])
		if err != nil {
			// Malformed datagrams (a Byzantine worker can send
			// anything) are dropped, not fatal.
			continue
		}
		if msg, done := r.asm.Offer(pkt); done {
			return msg, nil
		}
	}
}

// flushAny recoups one pending gradient per the policy. Partials are flushed
// in ascending (worker, step) order — iterating the pending map directly
// would let Go's randomized map order pick *which* partial a deadline
// recoups first, and (under FillRandom's shared rng stream) with which
// values, breaking the byte-reproducibility contract whenever several
// gradients are pending at once.
func (r *UDPReceiver) flushAny() (*GradientMsg, error) {
	keys := make([][2]int, 0, len(r.asm.pending))
	for key := range r.asm.pending {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		if msg, ok := r.asm.Flush(key[0], key[1]); ok {
			return msg, nil
		}
		// DropGradient: the flush discarded it; keep scanning in case
		// another partial is flushable (it will not be — same policy —
		// but the map must be drained to bound memory).
	}
	return nil, ErrTimeout
}

// RecvPacket reads datagrams until one decodes as a valid packet or the
// timeout passes (malformed datagrams are skipped — a Byzantine peer can
// send anything). The packet is NOT offered to the reassembler: callers that
// drive reassembly explicitly (cluster.UDPCluster slots gradients by worker
// id and recoups scheduled losses deterministically) pair RecvPacket with
// Reassembler().Offer.
func (r *UDPReceiver) RecvPacket(timeout time.Duration) (*Packet, error) {
	deadline := time.Now().Add(timeout)
	for {
		if err := r.conn.SetReadDeadline(deadline); err != nil {
			return nil, fmt.Errorf("transport: set deadline: %w", err)
		}
		n, _, err := r.conn.ReadFromUDP(r.buf)
		if err != nil {
			if isTimeout(err) {
				return nil, ErrTimeout
			}
			return nil, fmt.Errorf("transport: udp read: %w", err)
		}
		pkt, err := r.codec.DecodePacket(r.buf[:n])
		if err != nil {
			continue
		}
		return pkt, nil
	}
}

// Reassembler exposes the receiver's reassembly state for callers that drive
// packet collection explicitly through RecvPacket.
func (r *UDPReceiver) Reassembler() *Reassembler { return r.asm }

// RecvModel blocks until one model broadcast completes or the timeout
// passes, with the same recoup semantics as RecvGradient. Datagrams not
// carrying the ModelWorkerID tag are rejected as malformed.
func (r *UDPReceiver) RecvModel(timeout time.Duration) (*ModelMsg, error) {
	msg, err := r.RecvGradient(timeout)
	if err != nil {
		return nil, err
	}
	if msg.Worker != ModelWorkerID {
		return nil, fmt.Errorf("%w: expected model broadcast, got gradient from worker %d",
			ErrBadFrame, msg.Worker)
	}
	return &ModelMsg{Step: msg.Step, Params: msg.Grad}, nil
}

// Pending exposes the number of partially assembled gradients.
func (r *UDPReceiver) Pending() int { return r.asm.Pending() }

// Close releases the socket.
func (r *UDPReceiver) Close() error { return r.conn.Close() }

func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, os.ErrDeadlineExceeded)
}
