package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"
)

// ErrTimeout is returned by UDPReceiver.RecvGradient when the deadline
// passes with nothing deliverable under the recoup policy.
var ErrTimeout = errors.New("transport: udp receive timeout")

// Datagram batch sizing. One sendmmsg/recvmmsg moves up to udpBatch
// datagrams; the receive arena reserves a full 64 KiB slot per datagram
// because the sender's MTU is not negotiated (a UDP payload can be up to
// 65507 bytes and recvmmsg truncates anything beyond the slot).
const (
	udpBatch       = 16
	udpRecvBufSize = 65536
)

// UDPSender pushes gradients as datagrams — the lossyMPI send endpoint. An
// optional artificial DropRate reproduces the paper's tc-based loss
// injection (loopback links do not drop on their own).
//
// The sender owns a reusable encode arena: packets are encoded in place and
// flushed in sendmmsg batches, so the steady-state send path performs zero
// allocations per packet and ~1/udpBatch syscalls per datagram.
type UDPSender struct {
	conn    *net.UDPConn
	codec   Codec
	mtu     int
	batcher *sendBatcher
	batchOn bool

	dropRate float64
	rng      *rand.Rand
	dropBuf  []bool
	// pktScratch is reused across SendGradient calls so steady-state splits
	// do not allocate.
	pktScratch []Packet

	// Encode arena for the current batch: frames are subslices of arena, so
	// the arena is sized for a full batch up front and only an oversized
	// hand-built packet can force a flush-then-grow.
	arena        []byte
	frames       [][]byte
	pendingBytes int

	// Pacing state: a datagram burst larger than the receiver's kernel
	// buffer is silently truncated by the kernel (the "loss-free" channel
	// genuinely drops). SetPacing bounds the burst rate.
	paceBurst int
	paceDelay time.Duration
	burstAcc  int
}

// DialUDP creates a sender toward addr with an artificial drop rate in
// [0, 1) applied before the socket write. The MTU must fit at least the
// packet header plus one coordinate (Codec.MinMTU); zero selects
// DefaultMTU.
func DialUDP(addr string, codec Codec, mtu int, dropRate float64, seed int64) (*UDPSender, error) {
	if dropRate < 0 || dropRate >= 1 {
		return nil, fmt.Errorf("transport: drop rate %v out of [0,1)", dropRate)
	}
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	if mtu < codec.MinMTU() {
		return nil, fmt.Errorf("transport: mtu %d below the minimum %d (packet header + one coordinate)",
			mtu, codec.MinMTU())
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %s: %w", addr, err)
	}
	batcher, err := newSendBatcher(conn, udpBatch)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &UDPSender{
		conn:     conn,
		codec:    codec,
		mtu:      mtu,
		batcher:  batcher,
		batchOn:  true,
		dropRate: dropRate,
		rng:      rand.New(rand.NewSource(seed)),
		arena:    make([]byte, 0, udpBatch*mtu),
		frames:   make([][]byte, 0, udpBatch),
	}, nil
}

// LocalAddr returns the sender's bound local address (the dial interface —
// the cluster derives the worker model-endpoint bind host from it).
func (s *UDPSender) LocalAddr() string { return s.conn.LocalAddr().String() }

// SetBatching toggles sendmmsg batching (default on). With batching off
// every datagram is its own write syscall — the pre-v4 behaviour, kept as a
// benchmark ablation baseline. Packet content and order are identical
// either way.
func (s *UDPSender) SetBatching(on bool) { s.batchOn = on }

// Batched reports whether this sender batches datagram syscalls (false on
// platforms without sendmmsg or after SetBatching(false)).
func (s *UDPSender) Batched() bool { return s.batchOn && batchedSyscalls }

// ModelWorkerID tags datagrams carrying a model broadcast instead of a
// worker gradient (footnote 12: "our setup can be easily extended to support
// an unreliable communication for the model transfer"). Model broadcasts use
// a dedicated receiver socket so they never interleave with gradients.
const ModelWorkerID = 1<<30 - 1

// SendModel pushes a model broadcast over the lossy channel by reusing the
// gradient chunking with the reserved ModelWorkerID.
func (s *UDPSender) SendModel(m *ModelMsg) error {
	return s.SendGradient(&GradientMsg{Worker: ModelWorkerID, Step: m.Step, Grad: m.Params})
}

// SendGradient splits the gradient into datagrams and writes the survivors.
func (s *UDPSender) SendGradient(m *GradientMsg) error {
	pkts := s.codec.SplitInto(s.pktScratch[:0], m, s.mtu)
	s.pktScratch = pkts
	if cap(s.dropBuf) < len(pkts) {
		s.dropBuf = make([]bool, len(pkts))
	}
	drop := s.dropBuf[:len(pkts)]
	for i := range pkts {
		// Drawn per packet in split order: the rng stream (and therefore
		// every deterministic trajectory) matches the pre-batching sender.
		drop[i] = s.dropRate > 0 && s.rng.Float64() < s.dropRate
	}
	return s.SendPackets(pkts, drop)
}

// SetPacing rate-limits the sender: after every burstBytes of datagram
// payload written, the sender sleeps for delay so the receiver can drain its
// kernel buffer. Without pacing, a paper-scale broadcast (d = 1.75M ≈ 14 MB
// of datagrams) written back-to-back overflows any realistic SO_RCVBUF — the
// kernel silently discards the excess, turning the nominally loss-free
// channel into a lossy one. Pacing changes only timing, never content, so
// deterministic trajectories are unaffected. burstBytes <= 0 disables
// pacing.
func (s *UDPSender) SetPacing(burstBytes int, delay time.Duration) {
	s.paceBurst = burstBytes
	s.paceDelay = delay
	s.burstAcc = 0
}

// SendPackets writes the given packets as datagrams, skipping index i when
// dropped[i] is true (dropped may be nil or shorter than pkts; missing
// entries mean "send"). Callers that key loss on external state — the UDP
// cluster backend drops per a (seed, step, worker)-derived schedule so both
// endpoints can evaluate it — split with Codec.SplitInto and pass the
// schedule mask here. The whole path reuses the sender's arena: zero
// allocations per packet at steady state.
func (s *UDPSender) SendPackets(pkts []Packet, dropped []bool) error {
	for i := range pkts {
		if i < len(dropped) && dropped[i] {
			continue // the tc stand-in: this datagram "was lost"
		}
		if err := s.enqueue(&pkts[i]); err != nil {
			return err
		}
	}
	return s.flush()
}

// SendPacket writes one already-split packet immediately, bypassing the
// sender's own drop injection.
func (s *UDPSender) SendPacket(p *Packet) error {
	if err := s.enqueue(p); err != nil {
		return err
	}
	return s.flush()
}

// enqueue encodes p into the arena and flushes when the batch is full or
// the pacing burst boundary is reached.
func (s *UDPSender) enqueue(p *Packet) error {
	need := s.codec.PacketWireLen(p)
	if len(s.frames) > 0 && cap(s.arena)-len(s.arena) < need {
		// Growing the arena would reallocate it and dangle the frames
		// already queued (only possible for oversized hand-built packets —
		// split packets fit the MTU budget the arena was sized for).
		if err := s.flush(); err != nil {
			return err
		}
	}
	start := len(s.arena)
	s.arena = s.codec.AppendPacket(s.arena, p)
	s.frames = append(s.frames, s.arena[start:])
	s.pendingBytes += len(s.arena) - start
	if len(s.frames) == udpBatch ||
		(s.paceBurst > 0 && s.burstAcc+s.pendingBytes >= s.paceBurst) {
		return s.flush()
	}
	return nil
}

// flush writes the queued batch and applies pacing.
func (s *UDPSender) flush() error {
	if len(s.frames) == 0 {
		return nil
	}
	var err error
	if s.batchOn {
		err = s.batcher.Send(s.frames)
	} else {
		for _, buf := range s.frames {
			if _, werr := s.conn.Write(buf); werr != nil {
				err = werr
				break
			}
		}
	}
	s.frames = s.frames[:0]
	s.arena = s.arena[:0]
	s.burstAcc += s.pendingBytes
	s.pendingBytes = 0
	if err != nil {
		return fmt.Errorf("transport: udp write: %w", err)
	}
	if s.paceBurst > 0 && s.burstAcc >= s.paceBurst {
		s.burstAcc = 0
		time.Sleep(s.paceDelay)
	}
	return nil
}

// Close releases the socket.
func (s *UDPSender) Close() error { return s.conn.Close() }

// UDPReceiver assembles datagrams back into gradients with a recoup policy —
// the lossyMPI receive endpoint. Datagrams are drained from the kernel in
// recvmmsg batches and handed out one at a time.
type UDPReceiver struct {
	conn    *net.UDPConn
	codec   Codec
	asm     *Reassembler
	batcher *recvBatcher
	batched int // datagrams in the current batch
	next    int // next undelivered datagram in the batch

	wireMismatches int
	strictWire     bool
}

// ListenUDP binds a receive endpoint on addr ("127.0.0.1:0" for tests).
func ListenUDP(addr string, codec Codec, policy RecoupPolicy, seed int64) (*UDPReceiver, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	// Large receive buffer: a full gradient arrives as a burst. The kernel
	// caps this request at net.core.rmem_max (often well below 8 MB), so
	// large transfers additionally rely on sender pacing — see
	// UDPSender.SetPacing.
	_ = conn.SetReadBuffer(8 << 20)
	batcher, err := newRecvBatcher(conn, udpBatch, udpRecvBufSize)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &UDPReceiver{
		conn:    conn,
		codec:   codec,
		asm:     NewReassembler(policy, rand.New(rand.NewSource(seed))),
		batcher: batcher,
	}, nil
}

// Addr returns the bound address.
func (r *UDPReceiver) Addr() string { return r.conn.LocalAddr().String() }

// SetReadBuffer adjusts the socket receive buffer. The kernel caps the
// request at net.core.rmem_max, so a large buffer alone cannot absorb a
// paper-scale broadcast burst — senders must pace (UDPSender.SetPacing).
// Tests force it small to reproduce kernel drops deterministically.
func (r *UDPReceiver) SetReadBuffer(bytes int) error { return r.conn.SetReadBuffer(bytes) }

// SetStrictWireFormat makes wire-format mismatches (a peer encoding
// coordinates at the other width — ErrWireFormat) fatal to the receive call
// instead of skip-and-count. The default is lenient: datagrams are
// unauthenticated, so a single Byzantine datagram forged with the wrong
// width byte must not be able to abort an honest round; mismatches are
// tallied in WireMismatches either way, so a misconfigured deployment is
// still loud.
func (r *UDPReceiver) SetStrictWireFormat(on bool) { r.strictWire = on }

// WireMismatches reports how many datagrams decoded as well-formed frames
// of the WRONG coordinate width — every endpoint of a correctly configured
// deployment shares one wireFormat, so a nonzero count means a peer (or a
// spoofer) speaks the other codec.
func (r *UDPReceiver) WireMismatches() int { return r.wireMismatches }

// readDatagram returns the next datagram, draining the kernel in recvmmsg
// batches. The returned slice is valid until the next call.
func (r *UDPReceiver) readDatagram(deadline time.Time) ([]byte, error) {
	if r.next >= r.batched {
		if err := r.conn.SetReadDeadline(deadline); err != nil {
			return nil, fmt.Errorf("transport: set deadline: %w", err)
		}
		n, err := r.batcher.Recv()
		if err != nil {
			return nil, err
		}
		r.batched, r.next = n, 0
	}
	buf := r.batcher.Datagram(r.next)
	r.next++
	return buf, nil
}

// decode parses one datagram, tracking wire-format mismatches. skip=true
// means the datagram was invalid and the caller should read the next one.
func (r *UDPReceiver) decode(buf []byte) (pkt *Packet, skip bool, err error) {
	pkt, derr := r.codec.DecodePacket(buf)
	if derr == nil {
		return pkt, false, nil
	}
	if errors.Is(derr, ErrWireFormat) {
		r.wireMismatches++
		if r.strictWire {
			return nil, false, derr
		}
	}
	// Malformed datagrams (a Byzantine worker can send anything) are
	// dropped, not fatal.
	return nil, true, nil
}

// RecvGradient blocks until one gradient completes or the timeout passes.
// On timeout, pending partial gradients are recouped per the policy; if the
// policy is DropGradient (or nothing was pending) ErrTimeout is returned.
func (r *UDPReceiver) RecvGradient(timeout time.Duration) (*GradientMsg, error) {
	deadline := time.Now().Add(timeout)
	for {
		buf, err := r.readDatagram(deadline)
		if err != nil {
			if isTimeout(err) {
				return r.flushAny()
			}
			return nil, fmt.Errorf("transport: udp read: %w", err)
		}
		pkt, skip, err := r.decode(buf)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		if msg, done := r.asm.Offer(pkt); done {
			return msg, nil
		}
	}
}

// flushAny recoups one pending gradient per the policy. Partials are flushed
// in ascending (worker, step) order — iterating the pending map directly
// would let Go's randomized map order pick *which* partial a deadline
// recoups first, and (under FillRandom's shared rng stream) with which
// values, breaking the byte-reproducibility contract whenever several
// gradients are pending at once.
func (r *UDPReceiver) flushAny() (*GradientMsg, error) {
	keys := make([][2]int, 0, len(r.asm.pending))
	for key := range r.asm.pending {
		keys = append(keys, key)
	}
	//aggrevet:stable (worker, step) keys are unique, so the two-level comparator is a total order
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		if msg, ok := r.asm.Flush(key[0], key[1]); ok {
			return msg, nil
		}
		// DropGradient: the flush discarded it; keep scanning in case
		// another partial is flushable (it will not be — same policy —
		// but the map must be drained to bound memory).
	}
	return nil, ErrTimeout
}

// RecvPacket reads datagrams until one decodes as a valid packet or the
// timeout passes (malformed datagrams are skipped — a Byzantine peer can
// send anything). The packet is NOT offered to the reassembler: callers that
// drive reassembly explicitly (cluster.UDPCluster slots gradients by worker
// id and recoups scheduled losses deterministically) pair RecvPacket with
// Reassembler().Offer.
func (r *UDPReceiver) RecvPacket(timeout time.Duration) (*Packet, error) {
	deadline := time.Now().Add(timeout)
	for {
		buf, err := r.readDatagram(deadline)
		if err != nil {
			if isTimeout(err) {
				return nil, ErrTimeout
			}
			return nil, fmt.Errorf("transport: udp read: %w", err)
		}
		pkt, skip, err := r.decode(buf)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		return pkt, nil
	}
}

// Reassembler exposes the receiver's reassembly state for callers that drive
// packet collection explicitly through RecvPacket.
func (r *UDPReceiver) Reassembler() *Reassembler { return r.asm }

// RecvModel blocks until one model broadcast completes or the timeout
// passes, with the same recoup semantics as RecvGradient. Datagrams not
// carrying the ModelWorkerID tag are rejected as malformed.
func (r *UDPReceiver) RecvModel(timeout time.Duration) (*ModelMsg, error) {
	msg, err := r.RecvGradient(timeout)
	if err != nil {
		return nil, err
	}
	if msg.Worker != ModelWorkerID {
		return nil, fmt.Errorf("%w: expected model broadcast, got gradient from worker %d",
			ErrBadFrame, msg.Worker)
	}
	return &ModelMsg{Step: msg.Step, Params: msg.Grad}, nil
}

// Pending exposes the number of partially assembled gradients.
func (r *UDPReceiver) Pending() int { return r.asm.Pending() }

// Close releases the socket.
func (r *UDPReceiver) Close() error { return r.conn.Close() }

func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, os.ErrDeadlineExceeded)
}
