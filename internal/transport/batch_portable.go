//go:build !linux || !(amd64 || arm64)

// Portable fallback for the batched datagram I/O in batch_linux.go: the
// same sendBatcher/recvBatcher interface, implemented one datagram and one
// syscall at a time through the standard net methods.
package transport

import "net"

// batchedSyscalls reports whether this platform batches datagram syscalls.
const batchedSyscalls = false

type sendBatcher struct {
	conn *net.UDPConn
}

func newSendBatcher(conn *net.UDPConn, maxBatch int) (*sendBatcher, error) {
	return &sendBatcher{conn: conn}, nil
}

// Send writes every buffer as one datagram, in order.
func (b *sendBatcher) Send(bufs [][]byte) error {
	for _, buf := range bufs {
		if _, err := b.conn.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

type recvBatcher struct {
	conn *net.UDPConn
	buf  []byte
	n    int
}

func newRecvBatcher(conn *net.UDPConn, maxBatch, bufSize int) (*recvBatcher, error) {
	return &recvBatcher{conn: conn, buf: make([]byte, bufSize)}, nil
}

// Recv blocks until one datagram arrives or the conn's read deadline
// passes. The portable path delivers one datagram per call.
func (b *recvBatcher) Recv() (int, error) {
	n, _, err := b.conn.ReadFromUDP(b.buf)
	if err != nil {
		return 0, err
	}
	b.n = n
	return 1, nil
}

// Datagram returns the i-th datagram of the last Recv.
func (b *recvBatcher) Datagram(i int) []byte {
	return b.buf[:b.n]
}
