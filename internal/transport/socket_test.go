package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestTCPGradientRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	codec := Codec{}
	ln, err := ListenTCP("127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan *GradientMsg, 1)
	errs := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		msg, err := conn.RecvGradient()
		if err != nil {
			errs <- err
			return
		}
		done <- msg
	}()

	conn, err := DialTCP(ln.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := &GradientMsg{Worker: 5, Step: 77, Grad: randVec(rng, 10000)}
	if err := conn.SendGradient(want); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	case got := <-done:
		if got.Worker != 5 || got.Step != 77 || got.Grad.Dim() != 10000 {
			t.Fatalf("header mismatch: %+v", got)
		}
		for i := range want.Grad {
			if got.Grad[i] != want.Grad[i] {
				t.Fatalf("coord %d mismatch", i)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPModelBroadcastAndGradientReply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	codec := Codec{Float32: true}
	ln, err := ListenTCP("127.0.0.1:0", codec)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errs := make(chan error, 1)
	go func() {
		// Worker side: receive model, send back scaled gradient.
		conn, err := DialTCP(ln.Addr(), codec)
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		model, err := conn.RecvModel()
		if err != nil {
			errs <- err
			return
		}
		grad := model.Params.Clone()
		grad.Scale(2)
		errs <- conn.SendGradient(&GradientMsg{Worker: 0, Step: model.Step, Grad: grad})
	}()

	server, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	params := randVec(rng, 500)
	if err := server.SendModel(&ModelMsg{Step: 3, Params: params}); err != nil {
		t.Fatal(err)
	}
	got, err := server.RecvGradient()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got.Step != 3 {
		t.Fatalf("step %d, want 3", got.Step)
	}
	for i := range params {
		want := float64(float32(params[i])) * 2 // one float32 quantisation on the wire
		if math.Abs(got.Grad[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("coord %d: %v vs %v", i, got.Grad[i], want)
		}
	}
}

func TestUDPLosslessRoundTrip(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, DropGradient, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialUDP(recv.Addr(), codec, DefaultMTU, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	rng := rand.New(rand.NewSource(3))
	want := &GradientMsg{Worker: 9, Step: 4, Grad: randVec(rng, 5000)}
	if err := send.SendGradient(want); err != nil {
		t.Fatal(err)
	}
	got, err := recv.RecvGradient(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != 9 || got.Step != 4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range want.Grad {
		if got.Grad[i] != want.Grad[i] {
			t.Fatalf("coord %d mismatch", i)
		}
	}
}

func TestUDPWithLossFillNaN(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, FillNaN, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	// 20% artificial drop at the sender (the tc stand-in).
	send, err := DialUDP(recv.Addr(), codec, 512, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	rng := rand.New(rand.NewSource(6))
	want := &GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 10000)}
	if err := send.SendGradient(want); err != nil {
		t.Fatal(err)
	}
	got, err := recv.RecvGradient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	nans := got.Grad.CountNonFinite()
	if nans == 0 {
		t.Fatal("expected lost coordinates as NaN under 20% drop")
	}
	intact := 0
	for i, x := range got.Grad {
		if !math.IsNaN(x) {
			if x != want.Grad[i] {
				t.Fatalf("survived coordinate %d altered", i)
			}
			intact++
		}
	}
	if intact == 0 {
		t.Fatal("no coordinates survived 20% loss — implausible")
	}
}

func TestUDPDropGradientTimesOut(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, DropGradient, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialUDP(recv.Addr(), codec, 512, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	rng := rand.New(rand.NewSource(9))
	// 50% drop on ~170 packets: completion is essentially impossible.
	if err := send.SendGradient(&GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 10000)}); err != nil {
		t.Fatal(err)
	}
	_, err = recv.RecvGradient(300 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if recv.Pending() != 0 {
		t.Fatal("timeout must drain pending state")
	}
}

func TestUDPBadDropRateRejected(t *testing.T) {
	if _, err := DialUDP("127.0.0.1:1", Codec{}, 0, 1.5, 1); err == nil {
		t.Fatal("want error for drop rate out of range")
	}
}

func TestUDPIgnoresGarbageDatagrams(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, DropGradient, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// A Byzantine peer sends garbage first; a correct gradient must still
	// get through.
	send, err := DialUDP(recv.Addr(), codec, DefaultMTU, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if _, err := send.conn.Write([]byte("not a packet at all")); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	want := &GradientMsg{Worker: 2, Step: 2, Grad: randVec(rng, 100)}
	if err := send.SendGradient(want); err != nil {
		t.Fatal(err)
	}
	got, err := recv.RecvGradient(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != 2 {
		t.Fatalf("got worker %d", got.Worker)
	}
}

// TestUDPDeadlineFlushOrderDeterministic is the regression test for the
// determinism bug in the deadline path: with several partial gradients
// pending when the timeout fires, the old code recouped whichever one Go's
// randomized map iteration visited first. Flushes must happen in ascending
// (worker, step) order, so repeated runs of the same loss pattern recoup the
// same gradients in the same order with the same fill values.
func TestUDPDeadlineFlushOrderDeterministic(t *testing.T) {
	run := func() []int {
		codec := Codec{}
		recv, err := ListenUDP("127.0.0.1:0", codec, FillNaN, 30)
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		send, err := DialUDP(recv.Addr(), codec, 256, 0, 31)
		if err != nil {
			t.Fatal(err)
		}
		defer send.Close()

		rng := rand.New(rand.NewSource(32))
		// Five partial gradients: first packet only, rest "lost".
		for _, worker := range []int{7, 3, 9, 1, 5} {
			m := &GradientMsg{Worker: worker, Step: 2, Grad: randVec(rng, 200)}
			packets := codec.Split(m, 256)
			if err := send.SendPacket(&packets[0]); err != nil {
				t.Fatal(err)
			}
		}
		// Register every partial before forcing deadlines (the packet-level
		// ingest cannot flush anything).
		asm := recv.Reassembler()
		for recv.Pending() < 5 {
			pkt, err := recv.RecvPacket(2 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if _, done := asm.Offer(pkt); done {
				t.Fatal("a single packet completed a gradient")
			}
		}
		var order []int
		for i := 0; i < 5; i++ {
			msg, err := recv.RecvGradient(20 * time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, msg.Worker)
		}
		return order
	}
	want := []int{1, 3, 5, 7, 9}
	for attempt := 0; attempt < 3; attempt++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("attempt %d: deadline flush order %v, want ascending %v", attempt, got, want)
			}
		}
	}
}

// TestUDPGradientCarriesLossOverSocket pins the wire bugfix end to end: a
// loss value survives the datagram round trip (it used to arrive as 0).
func TestUDPGradientCarriesLossOverSocket(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, DropGradient, 40)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialUDP(recv.Addr(), codec, DefaultMTU, 0, 41)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	rng := rand.New(rand.NewSource(42))
	want := &GradientMsg{Worker: 4, Step: 6, Loss: 1.375, Grad: randVec(rng, 5000)}
	if err := send.SendGradient(want); err != nil {
		t.Fatal(err)
	}
	got, err := recv.RecvGradient(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != 1.375 {
		t.Fatalf("loss %v arrived, want 1.375", got.Loss)
	}
}

func TestUDPModelBroadcast(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, FillNaN, 20)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialUDP(recv.Addr(), codec, DefaultMTU, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	rng := rand.New(rand.NewSource(22))
	want := &ModelMsg{Step: 5, Params: randVec(rng, 3000)}
	if err := send.SendModel(want); err != nil {
		t.Fatal(err)
	}
	got, err := recv.RecvModel(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 5 || got.Params.Dim() != 3000 {
		t.Fatalf("model header mismatch: %+v", got)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("coord %d mismatch", i)
		}
	}
}

func TestUDPRecvModelRejectsGradient(t *testing.T) {
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, FillNaN, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := DialUDP(recv.Addr(), codec, DefaultMTU, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.SendGradient(&GradientMsg{Worker: 3, Step: 1, Grad: randVec(rand.New(rand.NewSource(25)), 10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.RecvModel(2 * time.Second); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for gradient on model channel, got %v", err)
	}
}
