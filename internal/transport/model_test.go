package transport

import (
	"testing"
	"time"

	"aggregathor/internal/tensor"
)

// modelFixture builds a bound model endpoint plus a sender toward it.
func modelFixture(t *testing.T, dim, mtu int) (*UDPReceiver, *UDPSender, Codec) {
	t.Helper()
	codec := Codec{}
	recv, err := ListenUDP("127.0.0.1:0", codec, DropGradient, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	recv.Reassembler().SetMaxDim(dim)
	send, err := DialUDP(recv.Addr(), codec, mtu, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return recv, send, codec
}

func modelParams(dim int) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	return v
}

// sendModelPackets splits one broadcast and writes the packets whose index
// is not masked out (the server-side scheduled drop).
func sendModelPackets(t *testing.T, send *UDPSender, codec Codec, step, mtu int, params tensor.Vector, drop []bool) {
	t.Helper()
	pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: step, Grad: params}, mtu)
	for i := range pkts {
		if i < len(drop) && drop[i] {
			continue
		}
		if err := send.SendPacket(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelCollectorCompleteBroadcasts pins the loss-free fast path: every
// broadcast arrives whole and is delivered in step order with intact
// parameters.
func TestModelCollectorCompleteBroadcasts(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: time.Second, IdleTimeout: 5 * time.Second})
	params := modelParams(dim)
	for step := 0; step < 3; step++ {
		sendModelPackets(t, send, codec, step, mtu, params, nil)
	}
	for step := 0; step < 3; step++ {
		ev, err := col.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Complete || ev.Step != step {
			t.Fatalf("event %+v, want complete step %d", ev, step)
		}
		for i := range params {
			if ev.Params[i] != params[i] {
				t.Fatalf("step %d coordinate %d corrupted", step, i)
			}
		}
	}
}

// TestModelCollectorTornSettlesWithoutDeadline: when the shared schedule
// says a packet was dropped at the server, the collector settles the torn
// broadcast the moment the scheduled survivors are in — it must NOT sit out
// the broadcast timeout waiting for a datagram it knows can never arrive.
func TestModelCollectorTornSettlesWithoutDeadline(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	per := codec.CoordsPerPacket(mtu)
	pktCount := (dim + per - 1) / per
	if pktCount < 3 {
		t.Fatalf("fixture needs >= 3 packets per broadcast, got %d", pktCount)
	}
	drops := map[int][]bool{0: make([]bool, pktCount)}
	drops[0][1] = true // packet 1 of step 0 is a scheduled drop
	schedule := func(step int) []bool {
		if d, ok := drops[step]; ok {
			return d
		}
		return make([]bool, pktCount)
	}
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		Schedule: schedule, BroadcastTimeout: 10 * time.Second, IdleTimeout: 20 * time.Second})
	params := modelParams(dim)
	sendModelPackets(t, send, codec, 0, mtu, params, drops[0])
	sendModelPackets(t, send, codec, 1, mtu, params, nil)

	start := time.Now()
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Torn || ev.Step != 0 {
		t.Fatalf("event %+v, want torn step 0", ev)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("torn broadcast took %v to settle: the collector waited on a deadline", elapsed)
	}
	if recv.Pending() != 0 {
		t.Fatalf("torn partial not evicted: %d pending", recv.Pending())
	}
	ev, err = col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 1 {
		t.Fatalf("event %+v, want complete step 1", ev)
	}
}

// TestModelCollectorSkipsFullyDroppedSteps: a broadcast whose every packet
// is a scheduled drop produces no event at all — the worker (like the
// server) knows nothing of it can arrive and moves straight to the next
// step with survivors.
func TestModelCollectorSkipsFullyDroppedSteps(t *testing.T) {
	const dim, mtu = 60, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	per := codec.CoordsPerPacket(mtu)
	pktCount := (dim + per - 1) / per
	schedule := func(step int) []bool {
		mask := make([]bool, pktCount)
		if step == 0 {
			for i := range mask {
				mask[i] = true
			}
		}
		return mask
	}
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		Schedule: schedule, BroadcastTimeout: time.Second, IdleTimeout: 5 * time.Second})
	sendModelPackets(t, send, codec, 1, mtu, modelParams(dim), nil)
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 1 {
		t.Fatalf("event %+v, want complete step 1 (step 0 skipped silently)", ev)
	}
}

// TestModelCollectorGenuineLossBoundedWait is the endpoint-wedge regression
// (a genuinely dropped model datagram used to leave the worker blocked in
// RecvModel for the full one-hour idle timeout with the partial pinned
// forever): packets the schedule cannot account for trigger a bounded
// per-broadcast wait, after which the torn partial is evicted and the
// broadcast reported lost.
func TestModelCollectorGenuineLossBoundedWait(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 200 * time.Millisecond, IdleTimeout: 30 * time.Second})
	// Simulate a kernel drop: only the first packet of step 0 is delivered.
	pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: 0, Grad: modelParams(dim)}, mtu)
	if len(pkts) < 2 {
		t.Fatal("fixture needs a multi-packet broadcast")
	}
	if err := send.SendPacket(&pkts[0]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Lost || ev.Step != 0 {
		t.Fatalf("event %+v, want lost step 0", ev)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lost broadcast took %v to settle, want roughly the broadcast timeout", elapsed)
	}
	if recv.Pending() != 0 {
		t.Fatalf("lost broadcast's partial still pinned: %d pending", recv.Pending())
	}
	// The next complete broadcast is delivered normally afterwards.
	sendModelPackets(t, send, codec, 1, mtu, modelParams(dim), nil)
	ev, err = col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 1 {
		t.Fatalf("event %+v, want complete step 1 after recovery", ev)
	}
}

// TestModelCollectorDeadlineSurvivesTraffic pins that the per-broadcast
// bound is a wall-clock deadline, not a per-read quiet period: in a live
// cluster, unrelated datagrams (later broadcasts, gradient-tagged spoofs)
// keep arriving, and they must not postpone the genuine-loss eviction
// forever.
func TestModelCollectorDeadlineSurvivesTraffic(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 300 * time.Millisecond, IdleTimeout: 30 * time.Second})
	// Genuine loss: only the first packet of step 0 arrives.
	pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: 0, Grad: modelParams(dim)}, mtu)
	if err := send.SendPacket(&pkts[0]); err != nil {
		t.Fatal(err)
	}
	// A background stream of ignorable gradient-tagged datagrams, spaced
	// well under the broadcast timeout.
	stop := make(chan struct{})
	go func() {
		spam := codec.Split(&GradientMsg{Worker: 3, Step: 0, Grad: modelParams(dim)}, mtu)
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				send.SendPacket(&spam[0])
			}
		}
	}()
	defer close(stop)
	start := time.Now()
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Lost || ev.Step != 0 {
		t.Fatalf("event %+v, want lost step 0", ev)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("continuous ignorable traffic postponed the eviction for %v", elapsed)
	}
}

// TestModelCollectorCatchUpJump pins the fall-behind recovery rate: when a
// buffered later broadcast has already fully resolved, one broadcast
// timeout must carry the collector over the whole unrecoverable range — a
// suspected worker that could only advance one step per timeout while the
// server keeps stepping would fall behind forever.
func TestModelCollectorCatchUpJump(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 300 * time.Millisecond, IdleTimeout: 30 * time.Second})
	params := modelParams(dim)
	// Step 0 is genuinely torn (one packet only); steps 1-4 are genuinely
	// lost outright; steps 5 and 6 arrive whole and buffer in the window.
	pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: 0, Grad: params}, mtu)
	if err := send.SendPacket(&pkts[0]); err != nil {
		t.Fatal(err)
	}
	sendModelPackets(t, send, codec, 5, mtu, params, nil)
	sendModelPackets(t, send, codec, 6, mtu, params, nil)

	start := time.Now()
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Lost {
		t.Fatalf("first event %+v, want lost", ev)
	}
	ev, err = col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 5 {
		t.Fatalf("event after catch-up %+v, want complete step 5", ev)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("catch-up over 5 lost broadcasts took %v — one timeout per step instead of a jump", elapsed)
	}
	ev, err = col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 6 {
		t.Fatalf("event %+v, want complete step 6 from the buffer", ev)
	}
}

// TestModelCollectorRejectsConflictingMetadata pins that spoofed packets the
// reassembler rejects (wrong dimension, conflicting repeated metadata)
// cannot count toward torn-resolution: on a loss-free channel the broadcast
// must still complete even when a conflicting packet per survivor index
// lands first.
func TestModelCollectorRejectsConflictingMetadata(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	per := codec.CoordsPerPacket(mtu)
	pktCount := codec.PacketsPerTransfer(dim, mtu)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 5 * time.Second, IdleTimeout: 30 * time.Second})
	params := modelParams(dim)
	real := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: 0, Grad: params}, mtu)
	// The genuine first packet pins the broadcast's metadata...
	if err := send.SendPacket(&real[0]); err != nil {
		t.Fatal(err)
	}
	// ...then a conflicting-Loss spoof for every remaining survivor index
	// (each rejected by the reassembler — pre-fix they still counted
	// toward torn-resolution and destroyed the in-flight broadcast) plus a
	// wrong-Dim spoof.
	for idx := 1; idx < pktCount; idx++ {
		n := per
		if idx == pktCount-1 {
			n = dim - idx*per
		}
		spoof := &Packet{Worker: ModelWorkerID, Step: 0, Loss: 99.5, Dim: dim,
			Offset: idx * per, Coords: make([]float64, n)}
		if err := send.SendPacket(spoof); err != nil {
			t.Fatal(err)
		}
	}
	wrongDim := &Packet{Worker: ModelWorkerID, Step: 0, Dim: dim + 1, Offset: 0,
		Coords: make([]float64, 1)}
	if err := send.SendPacket(wrongDim); err != nil {
		t.Fatal(err)
	}
	// The genuine remainder lands last and must still complete the model.
	for i := 1; i < len(real); i++ {
		if err := send.SendPacket(&real[i]); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 0 {
		t.Fatalf("event %+v, want complete step 0 (spoofed metadata faked a torn broadcast)", ev)
	}
	for i := range params {
		if ev.Params[i] != params[i] {
			t.Fatalf("coordinate %d corrupted by spoofed packets", i)
		}
	}
}

// TestModelBurstShortReadBuffer is the kernel-overflow regression at
// paper-ish scale: an unpaced burst larger than the receive buffer is
// silently truncated by the kernel (the "loss-free" channel genuinely
// drops, and pre-fix the worker wedged on the torn broadcast), while a
// paced sender with a concurrently draining receiver delivers the same
// burst intact through the same short buffer.
func TestModelBurstShortReadBuffer(t *testing.T) {
	const dim = 20000 // 160 KB of float64 coordinates: >> a 4 KB socket buffer
	const mtu = DefaultMTU

	// Unpaced: the burst overflows the buffer, the broadcast is torn, and
	// the collector recovers within the bounded wait instead of pinning
	// the partial for the idle timeout.
	recv, send, codec := modelFixture(t, dim, mtu)
	if err := recv.SetReadBuffer(4 << 10); err != nil {
		t.Fatal(err)
	}
	sendModelPackets(t, send, codec, 0, mtu, modelParams(dim), nil)
	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 300 * time.Millisecond, IdleTimeout: 30 * time.Second})
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Lost {
		t.Fatalf("unpaced 160KB burst into a 4KB buffer delivered %+v, want genuine loss", ev)
	}
	if recv.Pending() != 0 {
		t.Fatalf("torn partial still pinned after eviction: %d pending", recv.Pending())
	}

	// Paced: same short buffer, sender rate-limited, receiver draining
	// concurrently — the broadcast must complete.
	recv2, send2, _ := modelFixture(t, dim, mtu)
	if err := recv2.SetReadBuffer(4 << 10); err != nil {
		t.Fatal(err)
	}
	send2.SetPacing(2048, time.Millisecond)
	params := modelParams(dim)
	done := make(chan error, 1)
	go func() {
		pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: 0, Grad: params}, mtu)
		for i := range pkts {
			if err := send2.SendPacket(&pkts[i]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	col2 := NewModelCollector(recv2, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 10 * time.Second, IdleTimeout: 30 * time.Second})
	ev, err = col2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if sendErr := <-done; sendErr != nil {
		t.Fatal(sendErr)
	}
	if !ev.Complete || ev.Step != 0 {
		t.Fatalf("paced burst through a short buffer settled as %+v, want complete step 0", ev)
	}
	for i := range params {
		if ev.Params[i] != params[i] {
			t.Fatalf("paced delivery corrupted coordinate %d", i)
		}
	}
}

// TestModelCollectorHostileFutureStepsBounded is the worker-side
// reassembler-growth regression: spoofed datagrams claiming distinct future
// steps used to each pin a maxDim-sized partial indefinitely (the model
// endpoint never evicted anything). The collector caps buffered future
// broadcasts, filters gradient-tagged spoofs before they reach the
// reassembler, and the legitimate broadcast still assembles through the
// spam.
func TestModelCollectorHostileFutureStepsBounded(t *testing.T) {
	const dim, mtu = 100, 128
	recv, send, codec := modelFixture(t, dim, mtu)
	hostile, err := DialUDP(recv.Addr(), codec, mtu, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer hostile.Close()

	// 40 distinct future steps, one packet each, plus gradient-tagged spam.
	for step := 5; step < 45; step++ {
		pkts := codec.Split(&GradientMsg{Worker: ModelWorkerID, Step: step, Grad: modelParams(dim)}, mtu)
		if err := hostile.SendPacket(&pkts[0]); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 10; step++ {
		pkts := codec.Split(&GradientMsg{Worker: 3, Step: step, Grad: modelParams(dim)}, mtu)
		if err := hostile.SendPacket(&pkts[0]); err != nil {
			t.Fatal(err)
		}
	}
	// The legitimate broadcast lands after the spam.
	params := modelParams(dim)
	sendModelPackets(t, send, codec, 0, mtu, params, nil)

	col := NewModelCollector(recv, ModelCollectorConfig{Dim: dim, MTU: mtu, Codec: codec,
		BroadcastTimeout: 2 * time.Second, IdleTimeout: 10 * time.Second})
	ev, err := col.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Complete || ev.Step != 0 {
		t.Fatalf("event %+v, want the legitimate complete step 0 despite hostile spam", ev)
	}
	if col.Pending() > DefaultModelWindow {
		t.Fatalf("collector tracks %d pending broadcasts, cap is %d", col.Pending(), DefaultModelWindow)
	}
	if recv.Pending() > DefaultModelWindow+1 {
		t.Fatalf("reassembler pins %d partials after spam, want <= window+current (%d)",
			recv.Pending(), DefaultModelWindow+1)
	}
}

// TestDialUDPRejectsSubMinimumMTU is the MTU lower-bound regression: an MTU
// smaller than the packet header plus one coordinate (e.g. 16) used to pass
// validation, after which CoordsPerPacket clamped to 1 and every datagram
// silently exceeded the configured budget.
func TestDialUDPRejectsSubMinimumMTU(t *testing.T) {
	for _, codec := range []Codec{{}, {Float32: true}} {
		if _, err := DialUDP("127.0.0.1:1", codec, 16, 0, 1); err == nil {
			t.Fatalf("float32=%v: MTU 16 accepted (below minimum %d)", codec.Float32, codec.MinMTU())
		}
		if _, err := DialUDP("127.0.0.1:1", codec, codec.MinMTU()-1, 0, 1); err == nil {
			t.Fatalf("float32=%v: MTU %d accepted (one below minimum)", codec.Float32, codec.MinMTU()-1)
		}
		send, err := DialUDP("127.0.0.1:1", codec, codec.MinMTU(), 0, 1)
		if err != nil {
			t.Fatalf("float32=%v: minimum MTU rejected: %v", codec.Float32, err)
		}
		send.Close()
		// Zero still selects the default.
		send, err = DialUDP("127.0.0.1:1", codec, 0, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		send.Close()
	}
}
