package data

import (
	"testing"
)

func TestPartitionShardsDisjointAndCovering(t *testing.T) {
	ds := SyntheticFeatures(103, 4, 4, 80) // deliberately not divisible
	const workers = 5
	seen := map[int]int{} // sample row (by a distinguishing feature) -> worker
	total := 0
	for w := 0; w < workers; w++ {
		p := NewPartitionSampler(ds, w, workers, int64(w))
		total += p.ShardSize()
		for _, idx := range p.indexes {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("sample %d in shards of both %d and %d", idx, prev, w)
			}
			seen[idx] = w
		}
	}
	if total != ds.Len() {
		t.Fatalf("shards cover %d of %d samples", total, ds.Len())
	}
}

func TestPartitionSamplesOnlyOwnShard(t *testing.T) {
	ds := SyntheticFeatures(40, 3, 2, 81)
	p := NewPartitionSampler(ds, 1, 4, 1)
	own := map[float64]bool{}
	for _, idx := range p.indexes {
		own[ds.X.At(idx, 0)] = true
	}
	for i := 0; i < 20; i++ {
		x, _ := p.Sample(8)
		for r := 0; r < x.Rows; r++ {
			if !own[x.At(r, 0)] {
				t.Fatal("sample drawn from another worker's shard")
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	ds := SyntheticFeatures(10, 2, 2, 82)
	for _, tc := range []struct{ w, n int }{{-1, 3}, {3, 3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("worker=%d n=%d accepted", tc.w, tc.n)
				}
			}()
			NewPartitionSampler(ds, tc.w, tc.n, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("more workers than samples accepted")
			}
		}()
		NewPartitionSampler(ds, 0, 11, 1)
	}()
}

func TestPartitionShardBalance(t *testing.T) {
	ds := SyntheticFeatures(100, 2, 4, 83)
	small, large := 1<<31, 0
	for w := 0; w < 4; w++ {
		s := NewPartitionSampler(ds, w, 4, 1).ShardSize()
		if s < small {
			small = s
		}
		if s > large {
			large = s
		}
	}
	if large-small > 1 {
		t.Fatalf("shard imbalance: %d vs %d", small, large)
	}
}
