package data

import (
	"math/rand"

	"aggregathor/internal/tensor"
)

// SharedBatch serves identical, deterministic mini-batches to every member
// of a Draco redundancy group: the batch for (group, step, seed) is a pure
// function of those values. This is exactly the "agreement on the ordering
// of the dataset" requirement that lets Draco's majority vote compare
// gradients bit-for-bit — and that the paper criticises as incompatible with
// private data.
type SharedBatch struct {
	DS *Dataset
}

// GroupBatch implements the ps.DracoDataset contract.
func (s SharedBatch) GroupBatch(group, step, batch int, seed int64) (*tensor.Matrix, []int) {
	// Mix the coordinates into one seed; SplitMix-style constants keep
	// adjacent (group, step) pairs uncorrelated.
	mixedSeed := uint64(seed)
	mixedSeed = mixedSeed*0x9E3779B97F4A7C15 + uint64(group)
	mixedSeed = mixedSeed*0xBF58476D1CE4E5B9 + uint64(step)
	rng := rand.New(rand.NewSource(int64(mixedSeed)))
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = rng.Intn(s.DS.Len())
	}
	return s.DS.Batch(idx)
}
