package data

import (
	"fmt"
	"math/rand"

	"aggregathor/internal/tensor"
)

// PartitionSampler gives each worker a disjoint shard of the training set
// and samples uniformly within it — the privacy-motivated deployment from
// the paper's introduction ("workers could be user machines keeping their
// data locally"). Shards are strided so class balance is preserved when the
// parent dataset is shuffled. Because every shard is drawn from the same
// distribution, the IID assumption of the convergence analysis still holds,
// while no two workers ever touch the same sample — the setting Draco's
// shared-batch requirement cannot serve.
type PartitionSampler struct {
	ds      *Dataset
	indexes []int
	rng     *rand.Rand
}

// NewPartitionSampler shards ds across numWorkers and returns the sampler
// for worker id (0-based). It panics on an invalid id or on more workers
// than samples.
func NewPartitionSampler(ds *Dataset, worker, numWorkers int, seed int64) *PartitionSampler {
	if numWorkers <= 0 || worker < 0 || worker >= numWorkers {
		panic(fmt.Sprintf("data: partition worker %d of %d", worker, numWorkers))
	}
	if ds.Len() < numWorkers {
		panic(fmt.Sprintf("data: %d samples cannot shard across %d workers", ds.Len(), numWorkers))
	}
	var idx []int
	for i := worker; i < ds.Len(); i += numWorkers {
		idx = append(idx, i)
	}
	return &PartitionSampler{
		ds:      ds,
		indexes: idx,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// ShardSize returns the number of samples in this worker's shard.
func (p *PartitionSampler) ShardSize() int { return len(p.indexes) }

// Sample implements Sampler: uniform draws with replacement from the shard.
func (p *PartitionSampler) Sample(batch int) (*tensor.Matrix, []int) {
	if batch <= 0 {
		panic(fmt.Sprintf("data: batch size %d", batch))
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = p.indexes[p.rng.Intn(len(p.indexes))]
	}
	return p.ds.Batch(idx)
}
