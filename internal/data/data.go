// Package data provides the dataset substrate: deterministic synthetic
// image-classification datasets standing in for CIFAR-10 and MNIST (which
// cannot be downloaded in this offline reproduction), min-max scaling, IID
// per-worker mini-batch samplers, and the corrupted-data Byzantine behaviour
// of Figure 7 (label flipping / garbage pixels).
//
// The synthetic generator draws each class from a smooth random prototype
// plus per-sample Gaussian noise and a nonlinear shading field, producing a
// task that is non-trivially learnable — accuracy-versus-step curves keep
// the paper's shape (who converges, who diverges, relative slowdowns) even
// though absolute accuracies differ from natural images.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/nn"
	"aggregathor/internal/tensor"
)

// Dataset is a labelled design matrix: one sample per row of X.
type Dataset struct {
	X       *tensor.Matrix
	Y       []int
	Classes int
	Shape   nn.Shape
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Slice returns a view-free copy of rows [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.Len() || lo > hi {
		panic(fmt.Sprintf("data: slice [%d,%d) out of range 0..%d", lo, hi, d.Len()))
	}
	out := &Dataset{
		X:       tensor.NewMatrix(hi-lo, d.X.Cols),
		Y:       make([]int, hi-lo),
		Classes: d.Classes,
		Shape:   d.Shape,
	}
	copy(out.X.Data, d.X.Data[lo*d.X.Cols:hi*d.X.Cols])
	copy(out.Y, d.Y[lo:hi])
	return out
}

// Split partitions the dataset into train and test sets with the given
// train fraction (the paper uses 50,000/10,000 for CIFAR-10 = 5/6).
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("data: trainFrac %v out of (0,1)", trainFrac))
	}
	cut := int(float64(d.Len()) * trainFrac)
	return d.Slice(0, cut), d.Slice(cut, d.Len())
}

// MinMaxScale rescales every feature into [0, 1] in place (the paper's
// preprocessing step). Constant features map to 0.
func (d *Dataset) MinMaxScale() {
	cols := d.X.Cols
	for j := 0; j < cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < d.X.Rows; i++ {
			v := d.X.At(i, j)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		span := hi - lo
		for i := 0; i < d.X.Rows; i++ {
			if span == 0 {
				d.X.Set(i, j, 0)
			} else {
				d.X.Set(i, j, (d.X.At(i, j)-lo)/span)
			}
		}
	}
}

// Shuffle permutes samples in place with the given source.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	cols := d.X.Cols
	tmp := make([]float64, cols)
	rng.Shuffle(n, func(i, j int) {
		ri := d.X.Data[i*cols : (i+1)*cols]
		rj := d.X.Data[j*cols : (j+1)*cols]
		copy(tmp, ri)
		copy(ri, rj)
		copy(rj, tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Batch materialises the samples at the given indexes.
func (d *Dataset) Batch(idx []int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(len(idx), d.X.Cols)
	y := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Row(i), d.X.Row(s))
		y[i] = d.Y[s]
	}
	return x, y
}

// Config parameterises the synthetic generator.
type Config struct {
	// Samples is the total dataset size.
	Samples int
	// Classes is the number of labels.
	Classes int
	// Shape is the per-sample image shape.
	Shape nn.Shape
	// Noise is the per-pixel Gaussian noise around class prototypes.
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// SyntheticCIFAR returns the default CIFAR-10-like configuration: 32×32×3,
// 10 classes. Sample count is reduced from 60,000 to keep pure-Go
// experiments fast; pass a custom Config for full scale.
func SyntheticCIFAR(samples int, seed int64) *Dataset {
	return Generate(Config{
		Samples: samples,
		Classes: 10,
		Shape:   nn.Shape{H: 32, W: 32, C: 3},
		Noise:   0.25,
		Seed:    seed,
	})
}

// SyntheticMNIST returns the default MNIST-like configuration: 28×28×1,
// 10 classes.
func SyntheticMNIST(samples int, seed int64) *Dataset {
	return Generate(Config{
		Samples: samples,
		Classes: 10,
		Shape:   nn.Shape{H: 28, W: 28, C: 1},
		Noise:   0.2,
		Seed:    seed,
	})
}

// SyntheticFeatures returns a flat-feature classification dataset (dim
// features, no image structure) for fast MLP experiments.
func SyntheticFeatures(samples, dim, classes int, seed int64) *Dataset {
	return Generate(Config{
		Samples: samples,
		Classes: classes,
		Shape:   nn.FlatShape(dim),
		Noise:   0.35,
		Seed:    seed,
	})
}

// Generate builds a synthetic dataset per Config: each class gets a smooth
// random prototype; each sample is its class prototype, modulated by a
// random per-sample brightness, plus Gaussian noise. Labels are balanced
// round-robin then shuffled.
func Generate(cfg Config) *Dataset {
	if cfg.Samples <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("data: bad config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.Shape.Flat()
	protos := make([]tensor.Vector, cfg.Classes)
	for c := range protos {
		protos[c] = smoothPrototype(rng, cfg.Shape)
	}
	ds := &Dataset{
		X:       tensor.NewMatrix(cfg.Samples, d),
		Y:       make([]int, cfg.Samples),
		Classes: cfg.Classes,
		Shape:   cfg.Shape,
	}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		ds.Y[i] = c
		row := ds.X.Row(i)
		brightness := 0.75 + rng.Float64()*0.5
		for j := 0; j < d; j++ {
			row[j] = protos[c][j]*brightness + rng.NormFloat64()*cfg.Noise
		}
	}
	ds.Shuffle(rng)
	return ds
}

// smoothPrototype builds a class prototype with spatial structure: a sum of
// random low-frequency sinusoids over the image plane, so that nearby pixels
// correlate like natural images (convolutions have structure to find).
func smoothPrototype(rng *rand.Rand, shape nn.Shape) tensor.Vector {
	v := tensor.NewVector(shape.Flat())
	type wave struct{ fx, fy, phase, amp float64 }
	waves := make([]wave, 4)
	for w := range waves {
		waves[w] = wave{
			fx:    (rng.Float64() + 0.2) * 3,
			fy:    (rng.Float64() + 0.2) * 3,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   rng.Float64() + 0.3,
		}
	}
	for y := 0; y < shape.H; y++ {
		for x := 0; x < shape.W; x++ {
			var s float64
			fy := float64(y) / float64(shape.H)
			fx := float64(x) / float64(shape.W)
			for _, wv := range waves {
				s += wv.amp * math.Sin(2*math.Pi*(wv.fx*fx+wv.fy*fy)+wv.phase)
			}
			for ch := 0; ch < shape.C; ch++ {
				v[(y*shape.W+x)*shape.C+ch] = s * (1 + 0.2*float64(ch))
			}
		}
	}
	return v
}
