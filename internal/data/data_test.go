package data

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/nn"
)

func TestGenerateDeterministic(t *testing.T) {
	a := SyntheticFeatures(100, 8, 4, 7)
	b := SyntheticFeatures(100, 8, 4, 7)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed must generate identical labels")
		}
	}
	c := SyntheticFeatures(100, 8, 4, 8)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical data")
	}
}

func TestGenerateBalancedLabels(t *testing.T) {
	ds := SyntheticFeatures(100, 4, 4, 1)
	counts := make([]int, 4)
	for _, y := range ds.Y {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n != 25 {
			t.Fatalf("class %d has %d samples, want 25", c, n)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := SyntheticCIFAR(20, 1)
	if ds.Shape.Flat() != 32*32*3 {
		t.Fatalf("CIFAR flat dim %d", ds.Shape.Flat())
	}
	if ds.X.Rows != 20 || ds.X.Cols != 3072 {
		t.Fatalf("CIFAR X %dx%d", ds.X.Rows, ds.X.Cols)
	}
	m := SyntheticMNIST(10, 1)
	if m.Shape.Flat() != 784 {
		t.Fatalf("MNIST flat dim %d", m.Shape.Flat())
	}
}

func TestMinMaxScale(t *testing.T) {
	ds := SyntheticFeatures(50, 6, 3, 2)
	ds.MinMaxScale()
	for j := 0; j < ds.X.Cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < ds.X.Rows; i++ {
			v := ds.X.At(i, j)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo < 0 || hi > 1 {
			t.Fatalf("feature %d range [%v,%v] outside [0,1]", j, lo, hi)
		}
		if hi-lo < 0.99 {
			t.Fatalf("feature %d not stretched to full range: [%v,%v]", j, lo, hi)
		}
	}
}

func TestSplit(t *testing.T) {
	ds := SyntheticFeatures(60, 4, 3, 3)
	train, test := ds.Split(5.0 / 6.0)
	if train.Len() != 50 || test.Len() != 10 {
		t.Fatalf("split %d/%d, want 50/10", train.Len(), test.Len())
	}
	if train.Classes != 3 || test.Classes != 3 {
		t.Fatal("split lost class count")
	}
}

func TestSplitBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SyntheticFeatures(10, 2, 2, 1).Split(1.5)
}

func TestSliceIsCopy(t *testing.T) {
	ds := SyntheticFeatures(10, 2, 2, 4)
	s := ds.Slice(0, 5)
	s.X.Set(0, 0, 12345)
	if ds.X.At(0, 0) == 12345 {
		t.Fatal("Slice aliases parent storage")
	}
}

func TestBatch(t *testing.T) {
	ds := SyntheticFeatures(10, 3, 2, 5)
	x, y := ds.Batch([]int{2, 7})
	if x.Rows != 2 || len(y) != 2 {
		t.Fatalf("batch shape %dx%d / %d labels", x.Rows, x.Cols, len(y))
	}
	if y[0] != ds.Y[2] || y[1] != ds.Y[7] {
		t.Fatal("batch labels misaligned")
	}
	for j := 0; j < 3; j++ {
		if x.At(0, j) != ds.X.At(2, j) {
			t.Fatal("batch rows misaligned")
		}
	}
}

func TestUniformSamplerDeterministicPerSeed(t *testing.T) {
	ds := SyntheticFeatures(100, 4, 4, 6)
	s1 := NewUniformSampler(ds, 42)
	s2 := NewUniformSampler(ds, 42)
	x1, y1 := s1.Sample(8)
	x2, y2 := s2.Sample(8)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("same-seed samplers diverged")
		}
	}
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("same-seed samplers diverged on data")
		}
	}
}

func TestUniformSamplerCoversDataset(t *testing.T) {
	ds := SyntheticFeatures(20, 2, 2, 7)
	s := NewUniformSampler(ds, 1)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		x, _ := s.Sample(10)
		for r := 0; r < x.Rows; r++ {
			seen[x.At(r, 0)] = true
		}
	}
	if len(seen) < 15 {
		t.Fatalf("sampler visited only %d distinct samples of 20", len(seen))
	}
}

func TestSamplerBadBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniformSampler(SyntheticFeatures(5, 2, 2, 1), 1).Sample(0)
}

func TestLabelFlip(t *testing.T) {
	ds := SyntheticFeatures(30, 2, 3, 8)
	s := &CorruptedSampler{
		Inner:      NewUniformSampler(ds, 2),
		Corruption: LabelFlip{Classes: 3},
	}
	clean := NewUniformSampler(ds, 2)
	_, yC := clean.Sample(10)
	_, yF := s.Sample(10)
	for i := range yC {
		if yF[i] != (yC[i]+1)%3 {
			t.Fatalf("label %d: flip %d -> %d, want %d", i, yC[i], yF[i], (yC[i]+1)%3)
		}
	}
}

func TestGarbagePixels(t *testing.T) {
	ds := SyntheticFeatures(30, 4, 2, 9)
	ds.MinMaxScale()
	s := &CorruptedSampler{
		Inner:      NewUniformSampler(ds, 3),
		Corruption: GarbagePixels{Rng: rand.New(rand.NewSource(4))},
	}
	x, _ := s.Sample(10)
	big := 0
	for _, v := range x.Data {
		if math.Abs(v) > 1 {
			big++
		}
	}
	if big < len(x.Data)/2 {
		t.Fatalf("garbage pixels too tame: %d of %d outside [-1,1]", big, len(x.Data))
	}
}

func TestCorruptionNames(t *testing.T) {
	if (LabelFlip{}).Name() != "label-flip" {
		t.Fatal("LabelFlip name")
	}
	if (GarbagePixels{}).Name() != "garbage-pixels" {
		t.Fatal("GarbagePixels name")
	}
}

func TestSmoothPrototypeHasSpatialStructure(t *testing.T) {
	// Neighbouring pixels of a prototype must correlate more than distant
	// ones (the property convolutions exploit).
	rng := rand.New(rand.NewSource(10))
	shape := nn.Shape{H: 16, W: 16, C: 1}
	p := smoothPrototype(rng, shape)
	var nearDiff, farDiff float64
	var count int
	for y := 0; y < 16; y++ {
		for x := 0; x+8 < 16; x++ {
			base := p[y*16+x]
			nearDiff += math.Abs(base - p[y*16+x+1])
			farDiff += math.Abs(base - p[y*16+x+8])
			count++
		}
	}
	if nearDiff/float64(count) >= farDiff/float64(count) {
		t.Fatalf("no spatial structure: near %v >= far %v", nearDiff, farDiff)
	}
}

func TestMLPLearnsSyntheticTask(t *testing.T) {
	// End-to-end sanity: the synthetic task is actually learnable well
	// above chance by a small model.
	ds := SyntheticFeatures(300, 16, 4, 11)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	rng := rand.New(rand.NewSource(12))
	model := nn.NewMLP(16, []int{32}, 4, rng)
	sampler := NewUniformSampler(train, 13)
	params := model.ParamsVector()
	for step := 0; step < 300; step++ {
		x, y := sampler.Sample(32)
		_, grad := model.Gradient(x, y)
		params.Axpy(-0.5, grad)
		model.SetParamsVector(params)
	}
	if acc := model.Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("test accuracy %v, want > 0.6 (chance = 0.25)", acc)
	}
}
