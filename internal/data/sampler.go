package data

import (
	"fmt"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Sampler produces mini-batches for one worker. The paper's convergence
// analysis assumes each worker draws IID from the training set ("the workers
// to be drawing data independently and identically distributed"); Sampler
// implementations must honour that unless explicitly modelling corruption.
type Sampler interface {
	// Sample returns the next mini-batch (inputs, labels).
	Sample(batch int) (*tensor.Matrix, []int)
}

// UniformSampler draws uniformly with replacement from a dataset, seeded per
// worker so distributed runs are reproducible.
type UniformSampler struct {
	ds  *Dataset
	rng *rand.Rand
}

// NewUniformSampler builds an IID sampler over ds with its own seed.
func NewUniformSampler(ds *Dataset, seed int64) *UniformSampler {
	return &UniformSampler{ds: ds, rng: rand.New(rand.NewSource(seed))}
}

// Sample implements Sampler.
func (s *UniformSampler) Sample(batch int) (*tensor.Matrix, []int) {
	if batch <= 0 {
		panic(fmt.Sprintf("data: batch size %d", batch))
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = s.rng.Intn(s.ds.Len())
	}
	return s.ds.Batch(idx)
}

// Corruption transforms a sampled mini-batch in place — the data-level
// Byzantine behaviours of Figure 7 ("corrupted data ... to which TensorFlow
// is intolerant").
type Corruption interface {
	// Name identifies the corruption.
	Name() string
	// Corrupt mutates the batch.
	Corrupt(x *tensor.Matrix, y []int)
}

// LabelFlip relabels every sample to (label + Offset) mod classes — the
// classic poisoned-dataset worker.
type LabelFlip struct {
	Classes int
	Offset  int
}

// Name implements Corruption.
func (LabelFlip) Name() string { return "label-flip" }

// Corrupt implements Corruption.
func (l LabelFlip) Corrupt(x *tensor.Matrix, y []int) {
	off := l.Offset
	if off == 0 {
		off = 1
	}
	for i := range y {
		y[i] = (y[i] + off) % l.Classes
	}
}

// GarbagePixels overwrites inputs with large uniform noise — the "malformed
// input" of Figure 7 that makes gradients explode under averaging.
type GarbagePixels struct {
	// Scale is the noise amplitude; 0 means the default 100.
	Scale float64
	// Rng drives the noise; a nil Rng panics at first use by design (the
	// worker harness always provides one).
	Rng *rand.Rand
}

// Name implements Corruption.
func (GarbagePixels) Name() string { return "garbage-pixels" }

// Corrupt implements Corruption.
func (g GarbagePixels) Corrupt(x *tensor.Matrix, y []int) {
	scale := g.Scale
	if scale == 0 {
		scale = 100
	}
	for i := range x.Data {
		x.Data[i] = (g.Rng.Float64()*2 - 1) * scale
	}
}

// CorruptedSampler wraps a Sampler with a Corruption.
type CorruptedSampler struct {
	Inner      Sampler
	Corruption Corruption
}

// Sample implements Sampler.
func (c *CorruptedSampler) Sample(batch int) (*tensor.Matrix, []int) {
	x, y := c.Inner.Sample(batch)
	c.Corruption.Corrupt(x, y)
	return x, y
}
