package aggregathor_test

import (
	"fmt"

	"aggregathor"
)

// Aggregating worker gradients with a robust rule: the Byzantine outlier
// cannot drag the result.
func ExampleAggregate() {
	grads := [][]float64{
		{1.0, 2.0},
		{1.1, 1.9},
		{0.9, 2.1},
		{1.0, 2.0},
		{0.95, 2.05},
		{1e9, -1e9}, // Byzantine
		{1.05, 1.95},
	}
	out, err := aggregathor.Aggregate("median", 1, grads)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.2f %.2f\n", out[0], out[1])
	// Output: 1.00 2.00
}

// MULTI-KRUM selection: the m best-scoring gradients, never the far outlier.
func ExampleMultiKrumSelect() {
	grads := [][]float64{
		{1.0}, {1.1}, {0.9}, {1.05}, {0.95}, {1.02}, {50.0},
	}
	selected, err := aggregathor.MultiKrumSelect(1, 3, grads)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	outlierPicked := false
	for _, idx := range selected {
		if idx == 6 {
			outlierPicked = true
		}
	}
	fmt.Println(len(selected), outlierPicked)
	// Output: 3 false
}
