// Quickstart: train a model with Byzantine-resilient aggregation in a few
// lines — the README's two-minute path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aggregathor"
)

func main() {
	// 19 workers, 4 of which could be Byzantine (none are, here), exactly
	// the paper's evaluation cluster. MULTI-KRUM gives weak Byzantine
	// resilience; swap in "bulyan" for strong resilience.
	res, err := aggregathor.Run(aggregathor.Config{
		Experiment: "features-mlp",
		Aggregator: "multi-krum",
		Workers:    19,
		F:          4,
		Optimizer:  "momentum",
		LR:         0.1,
		Batch:      100,
		Steps:      150,
		EvalEvery:  15,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step   sim-time   accuracy")
	for _, p := range res.AccuracyVsStep.Points {
		fmt.Printf("%4d   %7.1fs   %.3f\n", p.Step, p.Time.Seconds(), p.Value)
	}
	fmt.Printf("\nfinal accuracy: %.3f\n", res.FinalAccuracy)
	fmt.Printf("aggregation share of each round: %.0f%%\n", res.Breakdown.AggregationShare()*100)

	// The GARs are also usable standalone on plain [][]float64 gradients.
	agg, err := aggregathor.Aggregate("multi-krum", 1, [][]float64{
		{1.0, 2.0}, {1.1, 1.9}, {0.9, 2.1}, {1.0, 2.05}, {0.95, 2.0},
		{1.05, 1.95}, {1e9, -1e9}, // one Byzantine gradient
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstandalone multi-krum over 7 gradients (1 Byzantine): %v\n", agg)
}
