// Lossy networking: training over UDP links that drop packets, comparing
// the three §3.3 recoup strategies and the TCP-vs-UDP clock — the Figure 8
// story, plus a real-socket demonstration of the lossyMPI endpoints.
//
//	go run ./examples/lossy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"aggregathor"
	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

func main() {
	trainingComparison()
	modelLossComparison()
	rawSocketsDemo()
}

// modelLossComparison trains over the real udp backend with 10% scheduled
// loss on the server→worker model broadcasts (footnote 12's unreliable model
// channel), comparing the two torn-broadcast recoup policies under the
// strict drop-gradient uplink recoup: with skip, a torn worker sits the
// round out and most rounds fall below multi-krum's quorum; with stale, the
// torn workers train on their last complete model and the server accepts
// the stale-tagged gradients, keeping nearly every round aggregating.
func modelLossComparison() {
	fmt.Println("== lossy model broadcasts over real UDP sockets (10% downlink drop) ==")
	fmt.Printf("%-34s %10s %8s %8s\n", "configuration", "final_acc", "stale", "skipped")
	for _, cfg := range []struct {
		label  string
		recoup aggregathor.ModelRecoupPolicy
	}{
		{"multi-krum + skip torn rounds", aggregathor.ModelRecoupSkip},
		{"multi-krum + stale-model recoup", aggregathor.ModelRecoupStale},
	} {
		res, err := aggregathor.Run(aggregathor.Config{
			Experiment:    "features-mlp",
			Backend:       "udp",
			Aggregator:    "multi-krum",
			F:             1,
			Workers:       7,
			Optimizer:     "momentum",
			LR:            0.1,
			Batch:         32,
			Steps:         150,
			EvalEvery:     50,
			Seed:          11,
			Recoup:        transport.DropGradient,
			ModelDropRate: 0.10,
			ModelRecoup:   cfg.recoup,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10.3f %8d %8d\n", cfg.label, res.FinalAccuracy, res.StaleGradients, res.SkippedRounds)
	}
	fmt.Println("(both endpoints evaluate the same ps.ModelDropSeed schedule, so lossy-model")
	fmt.Println(" rounds are deterministic and deadline-free; stale recoup trades staleness —")
	fmt.Println(" which the Byzantine-resilient GAR must absorb — for round liveness)")
	fmt.Println()
}

// trainingComparison trains over 8 lossy UDP links at a 10% artificial drop
// rate under each recoup policy.
func trainingComparison() {
	fmt.Println("== training over lossy UDP links (10% drop, 8 of 19 links) ==")
	fmt.Printf("%-34s %10s %12s\n", "configuration", "final_acc", "sim_time_s")
	for _, cfg := range []struct {
		label  string
		agg    string
		f      int
		recoup transport.RecoupPolicy
		proto  simnet.Protocol
	}{
		{"TCP/gRPC + averaging", "tf", 0, transport.DropGradient, simnet.TCP},
		{"UDP + drop-whole-gradient", "average", 0, transport.DropGradient, simnet.UDP},
		{"UDP + selective average (NaN)", "selective-average", 0, transport.FillNaN, simnet.UDP},
		{"UDP + multi-krum (random fill)", "multi-krum", 8, transport.FillRandom, simnet.UDP},
	} {
		res, err := aggregathor.Run(aggregathor.Config{
			Experiment: "features-mlp",
			Aggregator: cfg.agg,
			F:          cfg.f,
			Workers:    19,
			Optimizer:  "momentum",
			LR:         0.1,
			Batch:      100,
			Steps:      150,
			EvalEvery:  50,
			Seed:       11,
			UDPLinks:   8,
			DropRate:   0.10,
			Recoup:     cfg.recoup,
			Protocol:   cfg.proto,
		})
		if err != nil {
			log.Fatal(err)
		}
		last, _ := res.AccuracyVsTime.Last()
		fmt.Printf("%-34s %10.3f %12.1f\n", cfg.label, res.FinalAccuracy, last.Time.Seconds())
	}
	fmt.Println("(the robust GAR tolerates lost coordinates while keeping the fast UDP clock)")
	fmt.Println()
}

// rawSocketsDemo pushes one gradient through the real lossy UDP endpoints on
// localhost with a 20% artificial drop and shows the recoup at the receiver.
func rawSocketsDemo() {
	fmt.Println("== raw lossyMPI endpoints on localhost (20% artificial drop) ==")
	codec := transport.Codec{Float32: true}
	recv, err := transport.ListenUDP("127.0.0.1:0", codec, transport.FillNaN, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer recv.Close()
	send, err := transport.DialUDP(recv.Addr(), codec, 512, 0.20, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer send.Close()

	rng := rand.New(rand.NewSource(3))
	grad := make([]float64, 10_000)
	for i := range grad {
		grad[i] = rng.NormFloat64()
	}
	if err := send.SendGradient(&transport.GradientMsg{Worker: 2, Step: 9, Grad: grad}); err != nil {
		log.Fatal(err)
	}
	msg, err := recv.RecvGradient(500 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	lost := msg.Grad.CountNonFinite()
	fmt.Printf("sent 10000 coordinates over UDP; receiver recouped %d lost coordinates as NaN (%.1f%%)\n",
		lost, 100*float64(lost)/float64(len(msg.Grad)))
	fmt.Println("(a NaN-tolerant GAR — selective average or any robust rule — absorbs these)")
}
