// Byzantine showdown: the same training cluster under increasingly strong
// attacks, across aggregation rules — the paper's §4.3 narrative. Plain
// averaging falls to a single attacker; MULTI-KRUM (weak resilience) stops
// blind attacks but bends under the omniscient dimensional-leeway attack;
// BULYAN (strong resilience) holds.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"aggregathor"
)

func main() {
	// f = 4 Byzantine workers out of n = 19 (bulyan's requirement
	// n >= 4f+3 holds).
	attacks := []struct {
		label string
		spec  map[int]string
	}{
		{"no attack", nil},
		{"random blowup x4", map[int]string{3: "random", 7: "random", 11: "random", 15: "random"}},
		{"reversed gradient x4", map[int]string{3: "reversed", 7: "reversed", 11: "reversed", 15: "reversed"}},
		{"NaN/Inf x4", map[int]string{3: "non-finite", 7: "non-finite", 11: "non-finite", 15: "non-finite"}},
		{"stale replay x4", map[int]string{3: "stale", 7: "stale", 11: "stale", 15: "stale"}},
		{"omniscient x4", map[int]string{3: "omniscient", 7: "omniscient", 11: "omniscient", 15: "omniscient"}},
	}
	rules := []struct {
		label, agg string
		f          int
	}{
		{"average", "average", 0},
		{"multi-krum", "multi-krum", 4},
		{"bulyan", "bulyan", 4},
	}

	fmt.Printf("%-22s", "attack \\ GAR")
	for _, r := range rules {
		fmt.Printf("%14s", r.label)
	}
	fmt.Println()
	for _, atk := range attacks {
		fmt.Printf("%-22s", atk.label)
		for _, rule := range rules {
			res, err := aggregathor.Run(aggregathor.Config{
				Experiment: "features-mlp",
				Aggregator: rule.agg,
				F:          rule.f,
				Workers:    19,
				Optimizer:  "momentum",
				LR:         0.1,
				Batch:      64,
				Steps:      150,
				EvalEvery:  50,
				Seed:       7,
				Attacks:    atk.spec,
			})
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if res.Diverged {
				marker = " (diverged)"
			}
			fmt.Printf("%13.3f%s", res.FinalAccuracy, marker)
		}
		fmt.Println()
	}
	fmt.Println("\n(chance accuracy is 0.100 on this 10-class task)")
}
