// Replicated parameter server: the paper's §6 extension for removing the
// trusted-server assumption. Four deterministic server replicas run the same
// GAR + optimizer in lockstep; workers adopt the model endorsed by more than
// 2/3 of them — so one lying replica changes nothing.
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"

	"aggregathor"
)

func main() {
	fmt.Println("== replicated parameter server (R=4, one Byzantine replica) ==")
	for _, cfg := range []struct {
		label       string
		byzReplicas []int
	}{
		{"all replicas honest", nil},
		{"replica 2 lies every step", []int{2}},
	} {
		res, err := aggregathor.Run(aggregathor.Config{
			Experiment:        "features-mlp",
			Aggregator:        "multi-krum",
			F:                 1,
			Workers:           7,
			Optimizer:         "momentum",
			LR:                0.1,
			Batch:             64,
			Steps:             150,
			EvalEvery:         50,
			Seed:              5,
			ServerReplicas:    4,
			ByzantineReplicas: cfg.byzReplicas,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s final accuracy %.3f\n", cfg.label, res.FinalAccuracy)
	}
	fmt.Println()
	fmt.Println("Correct replicas stay bit-identical because the server computation")
	fmt.Println("(GAR + optimizer) is deterministic — the property §6 relies on.")
	fmt.Println("Try 2 Byzantine replicas of 4: the constructor refuses (needs R >= 3b+1),")
	fmt.Println("and a forced quorum loss fails loudly rather than accepting a forged model.")
}
