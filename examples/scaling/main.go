// Scaling study: the Figure-5 throughput scan over worker counts and
// declared f, for both the Table-1 CNN and the ResNet50 cost profiles —
// including the paper's counter-intuitive result that a *larger* declared f
// buys higher throughput.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"aggregathor/internal/core"
	"aggregathor/internal/nn"
)

func main() {
	counts := []int{2, 6, 10, 14, 18}
	configs := []struct {
		label, agg string
		f          int
	}{
		{"TF (averaging)", "tf", 0},
		{"Median", "median", 0},
		{"Multi-Krum f=1", "multi-krum", 1},
		{"Multi-Krum f=4", "multi-krum", 4},
		{"Bulyan f=1", "bulyan", 1},
		{"Bulyan f=2", "bulyan", 2},
		{"Draco f=1", "draco", 1},
		{"Draco f=4", "draco", 4},
	}

	profiles := []struct {
		title string
		dim   int
		flops float64
		batch int
	}{
		{"CNN (d=1.75M, b=100)", 1_756_426, nn.CIFARCNNFlopsPerSample, 100},
		{"ResNet50 (d=25.5M, b=32)", nn.ResNet50ParamCount, nn.ResNet50FlopsPerSample, 32},
	}
	for _, p := range profiles {
		fmt.Printf("== throughput scan, %s (batches/sec) ==\n", p.title)
		fmt.Printf("%-18s", "config")
		for _, n := range counts {
			fmt.Printf("%9s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, cfg := range configs {
			tp := core.ThroughputScan(cfg.agg, cfg.f, counts, p.dim, p.flops, p.batch)
			fmt.Printf("%-18s", cfg.label)
			for _, n := range counts {
				fmt.Printf("%9.2f", tp[n])
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("observations (matching the paper):")
	fmt.Println("  - all TensorFlow-based curves coincide up to ~6 workers, then split;")
	fmt.Println("  - a larger declared f gives *higher* throughput (fewer Bulyan iterations,")
	fmt.Println("    fewer Multi-Krum selections to average);")
	fmt.Println("  - Draco sits an order of magnitude lower and is insensitive to f;")
	fmt.Println("  - at ResNet50 scale, gradient computation dominates and the gap narrows.")
}
