package aggregathor

import (
	"math"
	"testing"

	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
)

func TestPublicAggregate(t *testing.T) {
	grads := [][]float64{
		{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1.05, 1}, {0.95, 1},
		{1, 1.05}, {1e9, -1e9},
	}
	out, err := Aggregate("multi-krum", 1, grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.2 || math.Abs(out[1]-1) > 0.2 {
		t.Fatalf("aggregate %v dragged by outlier", out)
	}
	if _, err := Aggregate("no-such", 0, grads); err == nil {
		t.Fatal("unknown GAR accepted")
	}
	if _, err := Aggregate("bulyan", 4, grads); err == nil {
		t.Fatal("undersized bulyan accepted")
	}
}

func TestPublicAggregateDoesNotMutate(t *testing.T) {
	grads := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, err := Aggregate("median", 0, grads); err != nil {
		t.Fatal(err)
	}
	if grads[0][0] != 1 || grads[2][1] != 6 {
		t.Fatal("inputs mutated")
	}
}

func TestMultiKrumSelectPublic(t *testing.T) {
	grads := [][]float64{
		{1}, {1.1}, {0.9}, {1.05}, {0.95}, {1.02}, {50},
	}
	sel, err := MultiKrumSelect(1, 2, grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	for _, idx := range sel {
		if idx == 6 {
			t.Fatal("outlier selected")
		}
	}
}

func TestRegistriesExposed(t *testing.T) {
	if len(Aggregators()) < 7 {
		t.Fatalf("aggregators: %v", Aggregators())
	}
	if len(Attacks()) < 7 {
		t.Fatalf("attacks: %v", Attacks())
	}
	if len(Optimizers()) < 6 {
		t.Fatalf("optimizers: %v", Optimizers())
	}
	if len(Experiments()) < 4 {
		t.Fatalf("experiments: %d", len(Experiments()))
	}
}

func TestPublicRunSmoke(t *testing.T) {
	res, err := Run(Config{
		Workers: 7, F: 1, Aggregator: "multi-krum",
		Optimizer: "momentum", LR: 0.1, Batch: 16,
		Steps: 30, EvalEvery: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AccuracyVsStep.Len() == 0 {
		t.Fatal("no evaluation points")
	}
}

func TestPublicTCPTrain(t *testing.T) {
	// The facade path: a socket-distributed session through the public API.
	var exp Experiment
	found := false
	for _, e := range Experiments() {
		if e.Name == "features-mlp" {
			exp, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("features-mlp preset missing")
	}
	train, test, factory := exp.Make(9)
	rule, err := gar.New("multi-krum", 1)
	if err != nil {
		t.Fatal(err)
	}
	optimizer, err := opt.New("momentum", opt.Fixed{Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	params, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      5,
		GAR:          rule,
		Optimizer:    optimizer,
		Batch:        32,
		Train:        train,
		Steps:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := factory()
	model.SetParamsVector(tensor.Vector(params))
	if acc := model.Accuracy(test.X, test.Y); acc < 0.3 {
		t.Fatalf("facade TCP training accuracy %v", acc)
	}
}
