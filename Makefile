GO ?= go
SMOKE_OUT ?= /tmp/aggregathor-scenario-smoke.json
TCP_SMOKE_OUT ?= /tmp/aggregathor-scenario-tcp-smoke.json
UDP_SMOKE_OUT ?= /tmp/aggregathor-scenario-udp-smoke.json
MODEL_LOSS_SMOKE_OUT ?= /tmp/aggregathor-scenario-model-loss-smoke.json
WIRE_SMOKE_OUT ?= /tmp/aggregathor-scenario-wire-smoke.json
ASYNC_SMOKE_OUT ?= /tmp/aggregathor-scenario-async-smoke.json
CHURN_SMOKE_OUT ?= /tmp/aggregathor-scenario-churn-smoke.json

BENCH_JSON_DIR ?= .

.PHONY: all vet lint escape-check guard-matrix-check directives check build test race fuzz smoke smoke-tcp smoke-udp smoke-model-loss smoke-wire smoke-async smoke-churn bench-json ci clean

all: ci

vet:
	$(GO) vet ./...

# Run the aggrevet determinism & hot-path suite (internal/analysis) over the
# whole module. Findings are fixed or justified with //aggrevet: directives —
# the build fails otherwise.
lint:
	$(GO) run ./cmd/aggrevet ./...

# Diff the hot-path escape profile (go build -gcflags=-m on internal/gar and
# internal/transport) against the committed baseline. Regenerate after an
# intentional change with: $(GO) run ./cmd/aggrevet -escape -write
escape-check:
	$(GO) run ./cmd/aggrevet -escape

# Diff the cross-layer guard-parity matrix (config-axis pairs x the layers
# rejecting them) against the committed golden. Regenerate after adding or
# moving a guard with: $(GO) run ./cmd/aggrevet -guard-matrix -write
guard-matrix-check:
	$(GO) run ./cmd/aggrevet -guard-matrix

# Audit every //aggrevet:* suppression directive in the module: prints each
# justification with its location and fails on thin (<10 char) ones.
directives:
	$(GO) run ./cmd/aggrevet -directives ./...

# The default local gate: static checks, then build and tests.
check: vet lint escape-check guard-matrix-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage of the transport codec and reassembler fuzz targets beyond
# the seed corpus.
fuzz:
	$(GO) test ./internal/transport/ -run=NONE -fuzz=FuzzDecodePacket -fuzztime=20s
	$(GO) test ./internal/transport/ -run=NONE -fuzz=FuzzDecodeGradient -fuzztime=20s
	$(GO) test ./internal/transport/ -run=NONE -fuzz=FuzzReassembler -fuzztime=20s
	$(GO) test ./internal/ps/ -run=NONE -fuzz=FuzzQuorumAdmission -fuzztime=20s
	$(GO) test ./internal/ps/ -run=NONE -fuzz=FuzzMembershipTracker -fuzztime=20s

# Run the built-in scenario campaign (4 GARs x 3 attacks + baseline x 2
# network conditions) and write the deterministic results JSON.
smoke:
	$(GO) run ./cmd/scenario -out $(SMOKE_OUT)

# Run the built-in socket-distributed campaign: the same cells in-process and
# over real localhost TCP, with byte-reproducible JSON for both.
smoke-tcp:
	$(GO) run ./cmd/scenario -builtin tcp-smoke -out $(TCP_SMOKE_OUT)

# Run the built-in lossy-datagram campaign: the same cells in-process, over
# real UDP sockets on a perfect link, and at 10% seeded packet loss — all
# with byte-reproducible JSON.
smoke-udp:
	$(GO) run ./cmd/scenario -builtin udp-smoke -out $(UDP_SMOKE_OUT)

# Run the built-in lossy-model-broadcast campaign (footnote 12): the same
# cells with a perfect model channel and with 10% scheduled downlink loss
# under the skip and stale recoup policies — all byte-reproducible.
smoke-model-loss:
	$(GO) run ./cmd/scenario -builtin model-loss-smoke -out $(MODEL_LOSS_SMOKE_OUT)

# Run the built-in wire-format campaign (float64 vs float32 over UDP, perfect
# and 10%-lossy links) twice and require byte-identical JSON: the float32 wire
# must be exactly as deterministic as the float64 one.
smoke-wire:
	$(GO) run ./cmd/scenario -builtin wire-smoke -out $(WIRE_SMOKE_OUT)
	$(GO) run ./cmd/scenario -builtin wire-smoke -out $(WIRE_SMOKE_OUT).rerun
	cmp $(WIRE_SMOKE_OUT) $(WIRE_SMOKE_OUT).rerun

# Run the built-in asynchronous-round campaign (quorum + bounded staleness
# under a deterministic slow-worker schedule, on all three backends) twice and
# require byte-identical JSON: the quorum settlement must be as deterministic
# as lockstep.
smoke-async:
	$(GO) run ./cmd/scenario -builtin async-smoke -out $(ASYNC_SMOKE_OUT)
	$(GO) run ./cmd/scenario -builtin async-smoke -out $(ASYNC_SMOKE_OUT).rerun
	cmp $(ASYNC_SMOKE_OUT) $(ASYNC_SMOKE_OUT).rerun

# Run the built-in worker-churn campaign (seeded crash/rejoin schedules with
# reconnect backoff and below-bound degradation, on both socket backends plus
# a lossy-uplink cell) twice and require byte-identical JSON: every churn
# counter is a pure function of the seed, never of socket timing.
smoke-churn:
	$(GO) run ./cmd/scenario -builtin churn-smoke -out $(CHURN_SMOKE_OUT)
	$(GO) run ./cmd/scenario -builtin churn-smoke -out $(CHURN_SMOKE_OUT).rerun
	cmp $(CHURN_SMOKE_OUT) $(CHURN_SMOKE_OUT).rerun

# Time the GAR kernel engine (fresh + workspace aggregation, distance
# schedules) and write BENCH_aggregation.json — the perf trajectory to diff
# across commits on the same machine.
bench-json:
	$(GO) run ./cmd/bench -json -out $(BENCH_JSON_DIR)

ci: vet lint escape-check guard-matrix-check build race smoke smoke-tcp smoke-udp smoke-model-loss smoke-wire smoke-async smoke-churn

clean:
	$(GO) clean ./...
	rm -f $(SMOKE_OUT) $(TCP_SMOKE_OUT) $(UDP_SMOKE_OUT) $(MODEL_LOSS_SMOKE_OUT) \
		$(WIRE_SMOKE_OUT) $(WIRE_SMOKE_OUT).rerun \
		$(ASYNC_SMOKE_OUT) $(ASYNC_SMOKE_OUT).rerun \
		$(CHURN_SMOKE_OUT) $(CHURN_SMOKE_OUT).rerun
