GO ?= go
SMOKE_OUT ?= /tmp/aggregathor-scenario-smoke.json

.PHONY: all vet build test race fuzz smoke ci clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage of the transport codec fuzz targets beyond the seed corpus.
fuzz:
	$(GO) test ./internal/transport/ -run=NONE -fuzz=FuzzDecodePacket -fuzztime=10s
	$(GO) test ./internal/transport/ -run=NONE -fuzz=FuzzDecodeGradient -fuzztime=10s

# Run the built-in scenario campaign (4 GARs x 3 attacks + baseline x 2
# network conditions) and write the deterministic results JSON.
smoke:
	$(GO) run ./cmd/scenario -out $(SMOKE_OUT)

ci: vet build race smoke

clean:
	$(GO) clean ./...
	rm -f $(SMOKE_OUT)
