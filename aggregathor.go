// Package aggregathor is a from-scratch Go reproduction of AGGREGATHOR
// (Damaskinos et al., SysML 2019): Byzantine-resilient distributed SGD via
// robust gradient aggregation.
//
// The package exposes three layers of API:
//
//   - Aggregation rules. Aggregate applies any registered GAR (average,
//     median, trimmed-mean, krum, multi-krum, bulyan, selective-average) to a
//     set of worker gradients — the paper's core algorithms, usable
//     standalone.
//
//   - Experiments. Run executes a full synchronous parameter-server training
//     session with configurable aggregator, optimizer, Byzantine attacks,
//     lossy links and security mode, returning accuracy/throughput/latency
//     series against a simulated Grid5000-like cluster clock.
//
//   - Distributed mode. NewTCPCluster builds a real socket-distributed
//     deployment driven round-by-round (server and workers speak the binary
//     wire protocol over TCP); TCPTrain is the one-shot convenience wrapper.
//     NewUDPCluster builds the paper's lossyMPI deployment instead:
//     gradients travel real UDP datagrams with seeded per-packet drop
//     injection, and the coordinates lost in flight are recouped by a §3.3
//     policy for the Byzantine-resilient GAR to absorb. Experiment configs
//     and campaign network cells select them with Backend/backend "tcp" or
//     "udp"; socket rounds reproduce the in-process trajectories
//     bit-for-bit under identical seeds (at drop rate 0 for udp), and lossy
//     udp rounds stay byte-reproducible because the drop schedules (uplink
//     gradients and, per footnote 12, downlink model broadcasts) and recoup
//     values are pure functions of (seed, step, worker).
//
// See README.md for a tour and EXPERIMENTS.md for the paper-figure
// reproduction index.
package aggregathor

import (
	"fmt"

	"aggregathor/internal/attack"
	"aggregathor/internal/cluster"
	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
	"aggregathor/internal/scenario"
	"aggregathor/internal/tensor"
)

// Config describes one training experiment (mirrors the original runner.py
// command line). See core.Config for field documentation.
type Config = core.Config

// Result holds an experiment's metric series.
type Result = core.Result

// Experiment is a model+dataset preset.
type Experiment = core.Experiment

// TCPTrainConfig describes a one-shot socket-distributed deployment.
type TCPTrainConfig = cluster.TCPTrainConfig

// TCPClusterConfig describes a round-driveable socket-distributed
// deployment.
type TCPClusterConfig = cluster.TCPClusterConfig

// TCPCluster is a running socket-distributed deployment driven
// round-by-round (Start/Step/Model/Close) — the distributed counterpart of
// the in-process cluster behind Run.
type TCPCluster = cluster.TCPCluster

// UDPClusterConfig describes a round-driveable lossy-datagram deployment
// (the paper's lossyMPI channel over real UDP sockets).
type UDPClusterConfig = cluster.UDPClusterConfig

// ModelRecoupPolicy selects the worker policy for a torn model broadcast on
// the lossy udp backend (footnote 12): skip the round, or train on the last
// complete model and submit a stale-tagged gradient.
type ModelRecoupPolicy = cluster.ModelRecoupPolicy

// The torn-model-broadcast policies.
const (
	ModelRecoupSkip  = cluster.ModelRecoupSkip
	ModelRecoupStale = cluster.ModelRecoupStale
)

// UDPCluster is a running lossy-datagram deployment driven round-by-round
// (Start/Step/Model/Close).
type UDPCluster = cluster.UDPCluster

// Run executes one experiment on the simulated cluster.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// CampaignSpec is a declarative GAR × attack × cluster × network sweep.
type CampaignSpec = scenario.Spec

// Campaign is an executed sweep: deterministic per-run results plus a text
// summary ranking aggregation rules per attack.
type Campaign = scenario.Campaign

// RunCampaign expands and executes a scenario sweep on a bounded worker
// pool. The same spec always produces byte-identical Campaign JSON.
func RunCampaign(spec CampaignSpec) (*Campaign, error) { return scenario.Execute(spec) }

// SmokeCampaignSpec returns the built-in demonstration sweep (4 GARs ×
// 3 attacks + baseline × 2 network conditions).
func SmokeCampaignSpec() CampaignSpec { return scenario.SmokeSpec() }

// TCPTrain runs a socket-distributed synchronous training session.
func TCPTrain(cfg TCPTrainConfig) ([]float64, error) {
	params, err := cluster.TCPTrain(cfg)
	return params, err
}

// NewTCPCluster builds a socket-distributed cluster to drive round-by-round.
// Call Start once, Step per synchronous round, and Close to hang up. Rounds
// are reproducible: worker sampler and attack seeds derive from Seed, and
// gradients are aggregated in worker-id order.
func NewTCPCluster(cfg TCPClusterConfig) (*TCPCluster, error) {
	return cluster.NewTCPCluster(cfg)
}

// NewUDPCluster builds a lossy-datagram cluster to drive round-by-round:
// gradients are chunked into UDP packets, DropRate of them are dropped per a
// (Seed, step, worker)-keyed schedule, and the lost coordinates are recouped
// by the configured §3.3 policy. Lossy rounds are deterministic: the same
// configuration always produces bit-identical parameters.
func NewUDPCluster(cfg UDPClusterConfig) (*UDPCluster, error) {
	return cluster.NewUDPCluster(cfg)
}

// Experiments lists the built-in model+dataset presets.
func Experiments() []Experiment { return core.Experiments() }

// Aggregators lists the registered gradient aggregation rules.
func Aggregators() []string { return gar.Names() }

// Attacks lists the registered Byzantine attacks.
func Attacks() []string { return attack.Names() }

// Optimizers lists the registered update rules.
func Optimizers() []string { return opt.Names() }

// Aggregate applies the named GAR with Byzantine tolerance f to the worker
// gradients and returns the aggregated gradient. Inputs are not mutated.
//
// Requirements: multi-krum needs n ≥ 2f+3, bulyan needs n ≥ 4f+3,
// trimmed-mean needs n ≥ 2f+1; average/median/selective-average ignore f.
func Aggregate(name string, f int, grads [][]float64) ([]float64, error) {
	rule, err := gar.New(name, f)
	if err != nil {
		return nil, err
	}
	vecs := make([]tensor.Vector, len(grads))
	for i, g := range grads {
		vecs[i] = tensor.Vector(g)
	}
	out, err := rule.Aggregate(vecs)
	if err != nil {
		return nil, fmt.Errorf("aggregathor: %w", err)
	}
	return out, nil
}

// MultiKrumSelect returns the indexes of the m gradients MULTI-KRUM selects
// (ascending score order); m = 0 selects the maximal safe n−f−2.
func MultiKrumSelect(f, m int, grads [][]float64) ([]int, error) {
	vecs := make([]tensor.Vector, len(grads))
	for i, g := range grads {
		vecs[i] = tensor.Vector(g)
	}
	mk := &gar.MultiKrum{NumByzantine: f, M: m}
	return mk.Select(vecs)
}
