module aggregathor

go 1.24
