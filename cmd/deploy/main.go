// Command deploy mirrors the original deploy.py tool: it takes a cluster
// specification (job → task addresses), validates it, prints the device
// allocation for a training graph, and can optionally run a real
// socket-distributed training session on localhost to exercise the wire
// protocol end to end:
//
//	go run ./cmd/deploy --spec '{"ps":["127.0.0.1:7000"],"workers":["127.0.0.1:7001","127.0.0.1:7002"]}'
//	go run ./cmd/deploy --run --nb-workers 5 --max-step 100
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"aggregathor/internal/cluster"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
)

func main() {
	var (
		spec      = flag.String("spec", `{"ps":["127.0.0.1:7000"],"workers":["127.0.0.1:7001"]}`, "cluster spec JSON (job -> task addresses)")
		policy    = flag.String("placement", "round-robin", "device placement policy: round-robin|prefer-gpu")
		workers   = flag.Int("nb-workers", 4, "worker replicas to allocate")
		doRun     = flag.Bool("run", false, "run a TCP-distributed training session on localhost")
		aggName   = flag.String("aggregator", "multi-krum", "GAR for --run")
		declaredF = flag.Int("f", 1, "Byzantine tolerance for --run")
		steps     = flag.Int("max-step", 100, "training steps for --run")
		batch     = flag.Int("batch-size", 32, "mini-batch size for --run")
		seed      = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	s, err := cluster.ParseSpec(*spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: jobs %v\n", s.JobNames())

	var pp cluster.PlacementPolicy
	switch *policy {
	case "round-robin":
		pp = &cluster.RoundRobin{}
	case "prefer-gpu":
		pp = cluster.PreferGPU{}
	default:
		fatal(fmt.Errorf("unknown placement policy %q", *policy))
	}
	alloc, err := cluster.Allocate(s, pp, *workers, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Println("device allocation:")
	for _, op := range []string{"variables", "aggregation", "apply_gradient", "accuracy"} {
		fmt.Printf("  %-24s -> %s\n", op, alloc[op])
	}
	for w := 0; w < *workers; w++ {
		op := fmt.Sprintf("worker_%d/gradient", w)
		fmt.Printf("  %-24s -> %s\n", op, alloc[op])
	}

	if !*doRun {
		return
	}
	fmt.Printf("\nrunning TCP-distributed training: n=%d aggregator=%s f=%d steps=%d\n",
		*workers, *aggName, *declaredF, *steps)
	ds := data.SyntheticFeatures(1200, 24, 10, *seed)
	ds.MinMaxScale()
	train, test := ds.Split(5.0 / 6.0)
	factory := func() *nn.Network {
		return nn.NewMLP(24, []int{48}, 10, rand.New(rand.NewSource(*seed)))
	}
	rule, err := gar.New(*aggName, *declaredF)
	if err != nil {
		fatal(err)
	}
	params, err := cluster.TCPTrain(cluster.TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      *workers,
		GAR:          rule,
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}, Momentum: 0.9},
		Batch:        *batch,
		Train:        train,
		Steps:        *steps,
		Seed:         *seed,
	})
	if err != nil {
		fatal(err)
	}
	model := factory()
	model.SetParamsVector(params)
	fmt.Printf("trained over real sockets; test accuracy: %.4f\n", model.Accuracy(test.X, test.Y))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deploy:", err)
	os.Exit(1)
}
