// Command aggrevet machine-checks the repo's reproducibility contract: it
// runs the internal/analysis suite — five per-package syntax checks
// (maporder, wallclock, seededrand, sortdet, hotalloc) and five module-wide
// dataflow/structure checks (seedflow, guardparity, selectdet, goroleak,
// errdet) — over the named packages and exits non-zero on any finding. It
// is the `make lint` workhorse and runs in CI on every push.
//
// Usage:
//
//	aggrevet [packages]          # analyze (default ./...)
//	aggrevet -escape             # diff the hot-path escape baseline
//	aggrevet -escape -write      # regenerate the committed baseline
//	aggrevet -guard-matrix       # diff the guard-parity golden matrix
//	aggrevet -guard-matrix -write# regenerate the committed matrix
//	aggrevet -directives         # audit every //aggrevet:* justification
//
// The escape mode complements hotalloc's syntactic pass: it captures the
// compiler's own `-gcflags=-m` escape decisions for the hot packages,
// normalizes away line numbers, and diffs them against the committed
// baseline (internal/analysis/escape_baseline.txt) — so an edit that makes
// a workspace kernel's local escape to the heap fails CI even when no new
// allocation expression was written.
//
// The guard-matrix mode renders the config-axis × layer rejection matrix
// that the guardparity analyzer reconciles (see
// internal/analysis/guard_matrix.txt for the row grammar, including
// reviewed "!layer" hole markers) and diffs it against the committed
// golden, so adding an axis or a guard is always a visible golden diff.
//
// The directives mode lists the repo's full suppression audit trail — every
// //aggrevet:<name> comment with its file:line and justification — and
// fails on justifications too thin to audit (fewer than 10 characters):
// the directive set is the reviewed inventory of every intentionally
// nondeterministic line, and "ok" is not a review.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"aggregathor/internal/analysis"
)

// escapePackages are the hot-path packages whose compiler escape decisions
// are pinned by the committed baseline.
var escapePackages = []string{
	"./internal/gar",
	"./internal/transport",
}

const baselinePath = "internal/analysis/escape_baseline.txt"

func main() {
	escape := flag.Bool("escape", false, "diff the hot-path gcflags=-m escape baseline instead of running the analyzers")
	guardMatrix := flag.Bool("guard-matrix", false, "diff the committed guard-parity matrix instead of running the analyzers")
	directives := flag.Bool("directives", false, "audit every //aggrevet:* suppression directive instead of running the analyzers")
	write := flag.Bool("write", false, "with -escape or -guard-matrix: rewrite the committed golden file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: aggrevet [-escape [-write] | -guard-matrix [-write] | -directives] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *escape {
		os.Exit(runEscape(*write))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *guardMatrix {
		os.Exit(runGuardMatrix(*write, patterns))
	}
	if *directives {
		os.Exit(runDirectives(patterns))
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunSuite(analysis.DefaultSuite(), pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aggrevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runGuardMatrix renders the guard-parity matrix over the loaded packages
// and either writes the committed golden (-write) or diffs against it.
func runGuardMatrix(write bool, patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggrevet -guard-matrix:", err)
		return 2
	}
	matrix := analysis.RenderGuardMatrix(pkgs)
	if write {
		if err := os.WriteFile(analysis.GuardMatrixFile, []byte(matrix), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aggrevet -guard-matrix:", err)
			return 2
		}
		fmt.Printf("aggrevet: wrote %s (%d rows) — review any \"!layer\" hole markers\n",
			analysis.GuardMatrixFile, strings.Count(matrix, "\n")-4)
		return 0
	}
	want, err := os.ReadFile(analysis.GuardMatrixFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggrevet -guard-matrix:", err)
		return 2
	}
	if string(want) == matrix {
		fmt.Println("aggrevet: guard matrix clean")
		return 0
	}
	fmt.Fprintln(os.Stderr, "aggrevet: guard-parity matrix drifted from", analysis.GuardMatrixFile)
	printProfileDiff(string(want), matrix)
	fmt.Fprintln(os.Stderr, "aggrevet: if the change is intended, regenerate with: go run ./cmd/aggrevet -guard-matrix -write")
	return 1
}

// minJustification is the shortest justification -directives accepts; below
// it a directive explains nothing ("ok", "fine", "racy").
const minJustification = 10

// runDirectives prints the repo-wide suppression audit trail and fails on
// unauditable justifications.
func runDirectives(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggrevet -directives:", err)
		return 2
	}
	thin := 0
	total := 0
	counts := map[string]int{}
	for _, pkg := range pkgs {
		for _, d := range pkg.Directives() {
			total++
			counts[d.Name]++
			fmt.Printf("%s:%d: //aggrevet:%s %s\n", d.Pos.Filename, d.Pos.Line, d.Name, d.Justification)
			if len(d.Justification) < minJustification {
				thin++
				fmt.Fprintf(os.Stderr, "%s:%d: justification %q is too thin to audit (< %d chars); say why the invariant holds\n",
					d.Pos.Filename, d.Pos.Line, d.Justification, minJustification)
			}
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var summary []string
	for _, n := range names {
		summary = append(summary, fmt.Sprintf("%s=%d", n, counts[n]))
	}
	fmt.Printf("aggrevet: %d directive(s): %s\n", total, strings.Join(summary, " "))
	if thin > 0 {
		fmt.Fprintf(os.Stderr, "aggrevet: %d unauditable justification(s)\n", thin)
		return 1
	}
	return 0
}

// runEscape regenerates the normalized escape profile of the hot packages
// and either writes it (-write) or diffs it against the committed baseline.
func runEscape(write bool) int {
	profile, err := escapeProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggrevet -escape:", err)
		return 2
	}
	if write {
		if err := os.WriteFile(baselinePath, []byte(profile), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aggrevet -escape:", err)
			return 2
		}
		fmt.Printf("aggrevet: wrote %s (%d lines)\n", baselinePath, strings.Count(profile, "\n"))
		return 0
	}
	want, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggrevet -escape:", err)
		return 2
	}
	if string(want) == profile {
		fmt.Println("aggrevet: escape baseline clean")
		return 0
	}
	fmt.Fprintln(os.Stderr, "aggrevet: hot-path escape profile drifted from", baselinePath)
	printProfileDiff(string(want), profile)
	fmt.Fprintln(os.Stderr, "aggrevet: if the change is intended, regenerate with: go run ./cmd/aggrevet -escape -write")
	return 1
}

// escapeLine matches the compiler diagnostics that matter: values moving to
// the heap. "does not escape" lines are noise for this purpose.
var escapeLine = regexp.MustCompile(`^(.+\.go):\d+:\d+: (.+ (?:escapes to heap|moved to heap.*))$`)

// escapeProfile builds the normalized escape profile: for each hot package,
// every distinct `file: expression escapes` line with positions stripped,
// sorted. Stripping line/column keeps the baseline stable under unrelated
// edits to the same files; sorting makes it independent of build order.
func escapeProfile() (string, error) {
	set := map[string]bool{}
	for _, pkg := range escapePackages {
		// One package per invocation: parallel package builds interleave
		// stderr. The build cache replays compiler diagnostics, so repeat
		// runs are cheap.
		cmd := exec.Command("go", "build", "-gcflags=-m", pkg)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("go build -gcflags=-m %s: %v\n%s", pkg, err, out.String())
		}
		sc := bufio.NewScanner(&out)
		for sc.Scan() {
			m := escapeLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			file := filepath.ToSlash(m[1])
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			set[file+": "+m[2]] = true
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
	}
	lines := make([]string, 0, len(set))
	for l := range set {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# aggrevet hot-path escape baseline: `go build -gcflags=-m` escapes-to-heap\n")
	b.WriteString("# lines for ")
	b.WriteString(strings.Join(escapePackages, ", "))
	b.WriteString(", positions stripped, sorted.\n")
	b.WriteString("# Regenerate with: go run ./cmd/aggrevet -escape -write\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// printProfileDiff renders a minimal set diff between baseline and current.
func printProfileDiff(want, got string) {
	wantSet := lineSet(want)
	gotSet := lineSet(got)
	var added, removed []string
	for l := range gotSet {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			removed = append(removed, l)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, l := range added {
		fmt.Fprintln(os.Stderr, "  + "+l)
	}
	for _, l := range removed {
		fmt.Fprintln(os.Stderr, "  - "+l)
	}
}

func lineSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, l := range strings.Split(s, "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		out[l] = true
	}
	return out
}
