package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aggregathor/internal/scenario"
)

func TestResolveSpecDefaultsToSmoke(t *testing.T) {
	s, err := resolveSpec("", "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" {
		t.Fatalf("default spec is %q, want the built-in smoke campaign", s.Name)
	}
}

func TestResolveSpecBuiltins(t *testing.T) {
	s, err := resolveSpec("", "tcp-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tcp-smoke" {
		t.Fatalf("builtin tcp-smoke resolved to %q", s.Name)
	}
	tcp := 0
	for _, n := range s.Networks {
		if n.Backend == "tcp" {
			tcp++
		}
	}
	if tcp == 0 {
		t.Fatal("tcp-smoke has no socket-distributed network cell")
	}
	s, err = resolveSpec("", "udp-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "udp-smoke" {
		t.Fatalf("builtin udp-smoke resolved to %q", s.Name)
	}
	udp, lossy := 0, 0
	for _, n := range s.Networks {
		if n.Backend == "udp" {
			udp++
			if n.DropRate > 0 {
				lossy++
			}
		}
	}
	if udp == 0 || lossy == 0 {
		t.Fatalf("udp-smoke has %d udp cells (%d lossy), want both > 0", udp, lossy)
	}
	s, err = resolveSpec("", "model-loss-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "model-loss-smoke" {
		t.Fatalf("builtin model-loss-smoke resolved to %q", s.Name)
	}
	modelLossy, stale := 0, 0
	for _, n := range s.Networks {
		if n.ModelDropRate > 0 {
			modelLossy++
			if n.ModelRecoup == "stale" {
				stale++
			}
		}
	}
	if modelLossy == 0 || stale == 0 {
		t.Fatalf("model-loss-smoke has %d lossy-model cells (%d stale), want both > 0", modelLossy, stale)
	}
	s, err = resolveSpec("", "async-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "async-smoke" {
		t.Fatalf("builtin async-smoke resolved to %q", s.Name)
	}
	quorumCells, slowCells, lossyAsync := 0, 0, 0
	for _, n := range s.Networks {
		if n.Quorum > 0 {
			quorumCells++
			if n.DropRate > 0 {
				lossyAsync++
			}
		}
		if n.SlowWorkers > 0 {
			slowCells++
		}
	}
	if quorumCells == 0 || slowCells == 0 || lossyAsync == 0 {
		t.Fatalf("async-smoke has %d quorum cells, %d slow-scheduled cells, %d lossy async cells; want all > 0",
			quorumCells, slowCells, lossyAsync)
	}
	if _, err := resolveSpec("", "no-such-campaign"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestUDPSpecFileRunsDeterministically is the CLI-level acceptance test for
// the lossy-datagram campaign path: a spec file with a backend:"udp" network
// at 10% drop loads through the same entry point main uses and executes to
// byte-identical JSON across two consecutive invocations.
func TestUDPSpecFileRunsDeterministically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "udp.json")
	raw := []byte(`{"name":"udp-file","gars":["multi-krum"],"attacks":["none","reversed"],
		"clusters":[{"workers":5,"f":1}],
		"networks":[{"name":"udp-lossy","backend":"udp","dropRate":0.1,"recoup":"fill-random","protocol":"udp"}],
		"steps":4,"batch":8,"evalEvery":2}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := resolveSpec(path, "")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		c, err := scenario.Execute(*spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two consecutive invocations of the udp spec produced different JSON")
	}
}

// TestTCPSpecFileRunsDeterministically is the CLI-level acceptance test for
// the distributed campaign path: a spec file with a backend:"tcp" network
// loads through the same entry point main uses and executes to byte-identical
// JSON across two consecutive invocations.
func TestTCPSpecFileRunsDeterministically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tcp.json")
	raw := []byte(`{"name":"tcp-file","gars":["multi-krum"],"attacks":["none","reversed"],
		"clusters":[{"workers":5,"f":1}],
		"networks":[{"name":"tcp-distributed","backend":"tcp"}],
		"steps":4,"batch":8,"evalEvery":2}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := resolveSpec(path, "")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		c, err := scenario.Execute(*spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two consecutive invocations of the tcp spec produced different JSON")
	}
}

func TestResolveSpecFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	raw := []byte(`{"name":"file-spec","gars":["average"],"attacks":["none"],
		"clusters":[{"workers":3,"f":0}],"networks":[{"name":"in-process"}],
		"steps":2,"batch":4}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := resolveSpec(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "file-spec" || len(s.GARs) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := resolveSpec(filepath.Join(t.TempDir(), "missing.json"), ""); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestSpecJSONRoundTrips(t *testing.T) {
	s := scenario.SmokeSpec()
	raw, err := specJSON(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || len(back.GARs) != len(s.GARs) || len(back.Networks) != len(s.Networks) {
		t.Fatalf("round-trip changed the spec: %+v", back)
	}
}
