package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aggregathor/internal/scenario"
)

func TestResolveSpecDefaultsToSmoke(t *testing.T) {
	s, err := resolveSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" {
		t.Fatalf("default spec is %q, want the built-in smoke campaign", s.Name)
	}
}

func TestResolveSpecFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	raw := []byte(`{"name":"file-spec","gars":["average"],"attacks":["none"],
		"clusters":[{"workers":3,"f":0}],"networks":[{"name":"in-process"}],
		"steps":2,"batch":4}`)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := resolveSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "file-spec" || len(s.GARs) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := resolveSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestSpecJSONRoundTrips(t *testing.T) {
	s := scenario.SmokeSpec()
	raw, err := specJSON(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || len(back.GARs) != len(s.GARs) || len(back.Networks) != len(s.Networks) {
		t.Fatalf("round-trip changed the spec: %+v", back)
	}
}
