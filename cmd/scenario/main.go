// Command scenario executes a declarative GAR × attack × cluster × network
// campaign and writes structured results.
//
//	go run ./cmd/scenario                      # built-in smoke campaign
//	go run ./cmd/scenario -builtin tcp-smoke   # socket-distributed smoke sweep
//	go run ./cmd/scenario -builtin udp-smoke   # lossy-datagram smoke sweep
//	go run ./cmd/scenario -builtin wire-smoke  # float64-vs-float32 wire sweep
//	go run ./cmd/scenario -builtin churn-smoke # worker crash/rejoin sweep
//	go run ./cmd/scenario -spec sweep.json \
//	  -out results.json                        # spec file in, JSON out
//	go run ./cmd/scenario -dump-spec           # print the smoke spec as JSON
//	go run ./cmd/scenario -list                # print the available axes
//
// The run is deterministic: the same spec produces byte-identical JSON, so
// campaign outputs can be diffed across commits to catch robustness or
// performance regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"aggregathor/internal/attack"
	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/scenario"
)

func main() {
	var (
		specPath = flag.String("spec", "", "campaign spec JSON file (empty = a built-in campaign, see -builtin)")
		builtin  = flag.String("builtin", "smoke", "built-in campaign used when -spec is empty: smoke | tcp-smoke | udp-smoke | wire-smoke | model-loss-smoke | async-smoke | churn-smoke")
		outPath  = flag.String("out", "", "write campaign results JSON to this file (empty = no JSON output)")
		summary  = flag.Bool("summary", true, "print the per-attack GAR ranking summary")
		parallel = flag.Int("parallel", 0, "override the spec's worker-pool size (0 = spec/NumCPU)")
		list     = flag.Bool("list", false, "list available GARs, attacks and experiments, then exit")
		dumpSpec = flag.Bool("dump-spec", false, "print the built-in smoke spec as JSON, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("gars:        %s\n", strings.Join(gar.Names(), ", "))
		fmt.Printf("attacks:     %s, %s\n", scenario.AttackNone, strings.Join(attack.Names(), ", "))
		var exps []string
		for _, e := range core.Experiments() {
			exps = append(exps, e.Name)
		}
		fmt.Printf("experiments: %s\n", strings.Join(exps, ", "))
		fmt.Printf("networks:    backend in-process|tcp|udp, udpLinks (-1 = all), dropRate [0,1), recoup drop-gradient|fill-nan|fill-random, modelDropRate [0,1), modelRecoup skip|stale, wireFormat float64|float32, quorum, staleness, slowWorkers [0,1), churn {rate [0,1), downSteps, maxRejoins}, protocol tcp|udp, rttMicros\n")
		return
	}

	spec, err := resolveSpec(*specPath, *builtin)
	if err != nil {
		fatal(err)
	}
	if *dumpSpec {
		raw, err := specJSON(spec)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(raw)
		return
	}
	if *parallel > 0 {
		spec.Parallelism = *parallel
	}

	campaign, err := scenario.Execute(*spec)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		raw, err := campaign.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d run results to %s\n", len(campaign.Results), *outPath)
	}
	if *summary {
		fmt.Print(campaign.Summary())
	}
}

// resolveSpec loads the spec file, or falls back to the named built-in
// campaign when no file is given.
func resolveSpec(path, builtin string) (*scenario.Spec, error) {
	if path != "" {
		return scenario.LoadSpec(path)
	}
	switch builtin {
	case "", "smoke":
		s := scenario.SmokeSpec()
		return &s, nil
	case "tcp-smoke":
		s := scenario.DistributedSmokeSpec()
		return &s, nil
	case "udp-smoke":
		s := scenario.UDPSmokeSpec()
		return &s, nil
	case "wire-smoke":
		s := scenario.WireSmokeSpec()
		return &s, nil
	case "model-loss-smoke":
		s := scenario.ModelLossSmokeSpec()
		return &s, nil
	case "async-smoke":
		s := scenario.AsyncSmokeSpec()
		return &s, nil
	case "churn-smoke":
		s := scenario.ChurnSmokeSpec()
		return &s, nil
	default:
		return nil, fmt.Errorf("unknown built-in campaign %q (want smoke|tcp-smoke|udp-smoke|wire-smoke|model-loss-smoke|async-smoke|churn-smoke)", builtin)
	}
}

// specJSON renders a spec (with defaults applied) for -dump-spec.
func specJSON(s *scenario.Spec) ([]byte, error) {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// fatal prints the error (package errors already carry their prefix) and
// exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
