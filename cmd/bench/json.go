package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"math/rand"

	"aggregathor/internal/gar"
	"aggregathor/internal/tensor"
)

// benchResult is one row of the BENCH_aggregation.json trajectory artifact.
type benchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchReport is the BENCH_aggregation.json schema. Numbers are machine-
// dependent; the file is a perf trajectory to diff across commits on the
// same hardware, not a determinism artifact.
type benchReport struct {
	Schema     string        `json:"schema"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Dim        int           `json:"dim"`
	Benchmarks []benchResult `json:"benchmarks"`
	// TransportDim is the gradient dimension of the transport rows.
	TransportDim int               `json:"transport_dim"`
	Transport    []transportResult `json:"transport"`
}

// benchKernel times fn, which processes bytes input bytes per call, until
// the -benchtime budget is spent.
func benchKernel(name string, bytes int64, fn func()) benchResult {
	fn() // warm scratch arenas and caches outside the measurement
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for time.Since(start) < *benchTime || iters < 3 {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	return benchResult{
		Name:        name,
		Iters:       iters,
		NsPerOp:     nsPerOp,
		MBPerS:      float64(bytes) / (nsPerOp / 1e9) / 1e6,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
	}
}

// writeKernelBenchJSON times every hot GAR kernel at the paper's n=19 on a
// d=100k slice of the Table-1 model — the BenchmarkCost_GARComplexity
// operating point — in both the fresh-allocation and workspace-backed
// modes, plus the three pairwise-distance schedules, and writes the rows to
// BENCH_aggregation.json.
func writeKernelBenchJSON() error {
	const n, d = 19, 100_000
	rng := rand.New(rand.NewSource(*seed))
	grads := make([]tensor.Vector, n)
	for i := range grads {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		grads[i] = v
	}
	bytes := int64(n * d * 8)

	report := benchReport{
		Schema:     "aggregathor-bench/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    n,
		Dim:        d,
	}

	rules := []struct {
		name string
		rule gar.GAR
	}{
		{"average", gar.Average{}},
		{"median", gar.Median{}},
		{"trimmed-mean", gar.TrimmedMean{Beta: 4}},
		{"mean-around-median", gar.NewMeanAroundMedian(4)},
		{"multi-krum", gar.NewMultiKrum(4)},
		{"bulyan", gar.NewBulyan(4)},
	}
	for _, r := range rules {
		r := r
		report.Benchmarks = append(report.Benchmarks,
			benchKernel("aggregate/"+r.name, bytes, func() {
				if _, err := r.rule.Aggregate(grads); err != nil {
					fatal(err)
				}
			}))
		ws := gar.NewWorkspace()
		report.Benchmarks = append(report.Benchmarks,
			benchKernel("workspace/"+r.name, bytes, func() {
				if _, err := gar.AggregateInto(ws, r.rule, grads); err != nil {
					fatal(err)
				}
			}))
	}

	var distWS gar.Workspace
	report.Benchmarks = append(report.Benchmarks,
		benchKernel("distances/blocked", bytes, func() {
			gar.BlockedPairwiseSquaredDistances(grads, &distWS, false)
		}),
		benchKernel("distances/row-parallel", bytes, func() {
			gar.PairwiseSquaredDistances(grads, false)
		}),
		benchKernel("distances/sequential", bytes, func() {
			gar.PairwiseSquaredDistances(grads, true)
		}),
	)

	report.TransportDim = transportDim
	transportRows, err := benchTransportRows()
	if err != nil {
		return err
	}
	report.Transport = transportRows

	dir := *outDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_aggregation.json")
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %d kernel benchmarks and %d transport rows to %s\n",
		len(report.Benchmarks), len(report.Transport), path)
	return nil
}
