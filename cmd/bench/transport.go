package main

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"math/rand"

	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// transportResult is one row of the transport section of
// BENCH_aggregation.json: real-socket UDP gradient transfer at the d=200k
// operating point. gradient_mb_per_s counts the in-memory gradient payload
// (d × 8 bytes per transfer) so the float32 wire shows up as a genuine
// end-to-end speedup, not a smaller numerator; packets_per_s and
// allocs_per_packet expose the syscall-batching and zero-copy-encode axes.
type transportResult struct {
	Name            string  `json:"name"`
	Iters           int     `json:"iters"`
	NsPerOp         float64 `json:"ns_per_op"`
	GradientMBPerS  float64 `json:"gradient_mb_per_s"`
	PacketsPerS     float64 `json:"packets_per_s"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	Batched         bool    `json:"batched"`
}

// transportDim is the gradient dimension of the transport rows: large
// enough that one transfer is ~1.2k datagrams (the syscall-batching lever),
// small enough that a full float64 transfer (~1.6 MB) sits inside the
// kernel receive buffer, keeping the loopback bench loss-free without
// pacing.
const transportDim = 200_000

// benchTransportRows measures the transport section: end-to-end rows for
// {float64 unbatched, float64 batched, float32 batched} and a send-path-only
// row pinning the zero-copy encode arena at 0 allocs/packet.
func benchTransportRows() ([]transportResult, error) {
	rng := rand.New(rand.NewSource(*seed))
	grad := tensor.NewVector(transportDim)
	for j := range grad {
		grad[j] = rng.NormFloat64()
	}
	configs := []struct {
		name    string
		codec   transport.Codec
		batched bool
	}{
		{"e2e/f64-unbatched", transport.Codec{}, false},
		{"e2e/f64-batched", transport.Codec{}, true},
		{"e2e/f32-batched", transport.Codec{Float32: true}, true},
	}
	var rows []transportResult
	for _, cfg := range configs {
		row, err := benchTransportE2E(cfg.name, cfg.codec, cfg.batched, grad)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sendRow, err := benchTransportSend("send/f32-batched", transport.Codec{Float32: true}, grad)
	if err != nil {
		return nil, err
	}
	return append(rows, sendRow), nil
}

// benchTransportE2E times complete gradient transfers over a loopback UDP
// socket pair: split, encode, write, read, decode, reassemble. One transfer
// is in flight at a time, so the kernel receive buffer bounds the burst and
// the loopback path stays loss-free.
func benchTransportE2E(name string, codec transport.Codec, batched bool, grad tensor.Vector) (transportResult, error) {
	recv, err := transport.ListenUDP("127.0.0.1:0", codec, transport.DropGradient, 1)
	if err != nil {
		return transportResult{}, err
	}
	defer recv.Close()
	send, err := transport.DialUDP(recv.Addr(), codec, transport.DefaultMTU, 0, 1)
	if err != nil {
		return transportResult{}, err
	}
	defer send.Close()
	send.SetBatching(batched)

	msg := &transport.GradientMsg{Worker: 1, Grad: grad}
	step := 0
	op := func() error {
		msg.Step = step
		step++
		if err := send.SendGradient(msg); err != nil {
			return err
		}
		got, err := recv.RecvGradient(10 * time.Second)
		if err != nil {
			return err
		}
		if got.Step != msg.Step || got.Grad.Dim() != grad.Dim() {
			return fmt.Errorf("bench: transfer corrupted (step %d/%d, dim %d/%d)",
				got.Step, msg.Step, got.Grad.Dim(), grad.Dim())
		}
		return nil
	}
	return measureTransport(name, codec, grad.Dim(), send.Batched(), op)
}

// benchTransportSend times the send path alone — split, zero-copy encode
// into the arena, sendmmsg — against a raw-drain sink that reads and
// discards datagrams without decoding, so the row's allocs_per_packet is
// the send path's and nothing else. This is the zero-allocation contract of
// the encode arena: the steady-state value must be 0.
func benchTransportSend(name string, codec transport.Codec, grad tensor.Vector) (transportResult, error) {
	sinkAddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return transportResult{}, err
	}
	sink, err := net.ListenUDP("udp", sinkAddr)
	if err != nil {
		return transportResult{}, err
	}
	defer sink.Close()
	go func() {
		// Read, not ReadFromUDP: the latter allocates a *UDPAddr per
		// datagram, which would leak the sink's allocations into the send
		// path's global alloc count.
		buf := make([]byte, 65536)
		for {
			if _, err := sink.Read(buf); err != nil {
				return
			}
		}
	}()
	send, err := transport.DialUDP(sink.LocalAddr().String(), codec, transport.DefaultMTU, 0, 1)
	if err != nil {
		return transportResult{}, err
	}
	defer send.Close()

	msg := &transport.GradientMsg{Worker: 1, Grad: grad}
	step := 0
	op := func() error {
		msg.Step = step
		step++
		return send.SendGradient(msg)
	}
	return measureTransport(name, codec, grad.Dim(), send.Batched(), op)
}

// measureTransport drives op under the -benchtime budget and distils the
// transport row. The warm-up call is outside the measurement so arena and
// scratch growth does not count against the steady state.
func measureTransport(name string, codec transport.Codec, dim int, batched bool, op func() error) (transportResult, error) {
	if err := op(); err != nil {
		return transportResult{}, err
	}
	pkts := codec.PacketsPerTransfer(dim, transport.DefaultMTU)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for time.Since(start) < *benchTime || iters < 3 {
		if err := op(); err != nil {
			return transportResult{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	return transportResult{
		Name:            "transport/" + name,
		Iters:           iters,
		NsPerOp:         nsPerOp,
		GradientMBPerS:  float64(dim*8) / (nsPerOp / 1e9) / 1e6,
		PacketsPerS:     float64(pkts) / (nsPerOp / 1e9),
		AllocsPerPacket: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters) / float64(pkts),
		Batched:         batched,
	}, nil
}
