// Command bench regenerates every table and figure of the AggregaThor paper
// as aligned text tables and TSV series. Run with -quick for a fast pass
// (fewer steps) or -out DIR to also write per-figure TSV files.
//
//	go run ./cmd/bench -quick
//
// With -json the command instead times the GAR kernel engine (per-benchmark
// ns/op, MB/s, allocs/op for every hot aggregation rule, fresh and
// workspace-backed, plus the three pairwise-distance schedules) and writes
// BENCH_aggregation.json into the -out directory (default ".") — the
// tracked perf-trajectory artifact that CI uploads on every run:
//
//	go run ./cmd/bench -json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"math/rand"

	"aggregathor/internal/core"
	"aggregathor/internal/metrics"
	"aggregathor/internal/nn"
	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

var (
	quick     = flag.Bool("quick", false, "run fewer steps per experiment")
	outDir    = flag.String("out", "", "directory for TSV series / bench JSON (optional)")
	seed      = flag.Int64("seed", 3, "experiment seed")
	jsonBench = flag.Bool("json", false, "time the GAR kernels and write BENCH_aggregation.json instead of regenerating figures")
	benchTime = flag.Duration("benchtime", 300*time.Millisecond, "per-kernel time budget in -json mode")
)

func main() {
	flag.Parse()
	steps := 200
	if *quick {
		steps = 60
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *jsonBench {
		if err := writeKernelBenchJSON(); err != nil {
			fatal(err)
		}
		return
	}

	table1()
	fig3(steps)
	fig4()
	fig5()
	fig6(steps)
	fig7(steps)
	fig8(steps)
	costAnalysis()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func run(cfg core.Config) *core.Result {
	cfg.Seed = *seed
	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	return res
}

func writeSeries(name string, s metrics.Series) {
	if *outDir == "" {
		return
	}
	path := filepath.Join(*outDir, name+".tsv")
	if err := os.WriteFile(path, []byte(s.TSV()), 0o644); err != nil {
		fatal(err)
	}
}

// table1 prints the CNN architecture with the paper's parameter count.
func table1() {
	model := nn.NewCIFARCNN(rand.New(rand.NewSource(1)))
	fmt.Println("== Table 1: CNN model parameters ==")
	fmt.Print(model.Summary())
	fmt.Printf("(paper reports ~1.75M parameters)\n\n")
}

// fig3 reproduces the non-Byzantine overhead curves at mini-batch 250 and
// 20, printing time-to-half-accuracy slowdowns against vanilla TF.
func fig3(steps int) {
	configs := []struct {
		label, agg string
		f          int
	}{
		{"TF", "tf", 0},
		{"Average", "average", 0},
		{"Median", "median", 0},
		{"Multi-Krum (f=4)", "multi-krum", 4},
		{"Bulyan (f=4)", "bulyan", 4},
		{"Draco (f=4)", "draco", 4},
	}
	for _, batch := range []int{250, 20} {
		rows := map[string][]string{}
		// The paper's metric: every system is timed to 50% of *vanilla
		// TF's* final accuracy ("19% and 43% slower for reaching the
		// same accuracy"), so the target is fixed by the TF run first.
		var target, baseline float64
		for _, cfg := range configs {
			res := run(core.Config{
				Workers: 19, F: cfg.f, Aggregator: cfg.agg,
				Optimizer: "momentum", LR: 0.1, Batch: batch,
				// A fine evaluation grid: the crossing time would
				// otherwise be quantised to the evaluation period.
				Steps: steps, EvalEvery: 2,
			})
			writeSeries(fmt.Sprintf("fig3_b%d_%s", batch, cfg.agg), res.AccuracyVsTime)
			if cfg.agg == "tf" {
				target = res.AccuracyVsTime.MaxValue() / 2
			}
			tHalf, ok := res.AccuracyVsTime.TimeToValue(target)
			if !ok {
				tHalf = -1
			}
			if cfg.agg == "tf" {
				baseline = tHalf.Seconds()
			}
			slowdown := "n/a"
			if baseline > 0 && tHalf > 0 {
				slowdown = fmt.Sprintf("%+.0f%%", (tHalf.Seconds()/baseline-1)*100)
			}
			rows[cfg.label] = []string{
				fmt.Sprintf("%.1f", tHalf.Seconds()),
				slowdown,
				fmt.Sprintf("%.3f", res.FinalAccuracy),
			}
		}
		fmt.Print(metrics.Table(
			fmt.Sprintf("Figure 3 (mini-batch %d): overhead in a non-Byzantine environment", batch),
			rows, []string{"s_to_half_acc", "vs_TF", "final_acc"}))
		fmt.Printf("(paper: Multi-Krum +19%%, Bulyan +43%%, Average +7%% at b=250)\n\n")
	}
}

// fig4 prints the latency breakdown per epoch.
func fig4() {
	configs := []struct {
		label, agg string
		f          int
	}{
		{"TF", "tf", 0},
		{"Median", "median", 0},
		{"Multi-Krum (f=4)", "multi-krum", 4},
		{"Bulyan (f=4)", "bulyan", 4},
	}
	rows := map[string][]string{}
	const n, d, batch = 19, 1_756_426, 250
	for _, cfg := range configs {
		sim := simnet.Grid5000(n, d)
		if cfg.agg != "tf" {
			sim.AggTime = simnet.ModelAggregation(cfg.agg, n, cfg.f, d)
		}
		round := sim.SimulateRound(batch)
		b := metrics.Breakdown{
			Name:        cfg.label,
			ComputeComm: round.Compute + round.Transfer,
			Aggregation: round.Aggregate,
		}
		rows[cfg.label] = []string{
			fmt.Sprintf("%.3f", b.ComputeComm.Seconds()),
			fmt.Sprintf("%.3f", b.Aggregation.Seconds()),
			fmt.Sprintf("%.0f%%", b.AggregationShare()*100),
		}
	}
	fmt.Print(metrics.Table("Figure 4: latency breakdown per epoch",
		rows, []string{"compute+comm_s", "aggregation_s", "agg_share"}))
	fmt.Printf("(paper shares: Median 35%%, Multi-Krum 27%%, Bulyan 52%%)\n\n")
}

// fig5 prints the throughput scans for the CNN and ResNet50 cost profiles.
func fig5() {
	counts := []int{2, 4, 6, 8, 10, 12, 14, 16, 18}
	configs := []struct {
		label, agg string
		f          int
	}{
		{"TF", "tf", 0},
		{"Average", "average", 0},
		{"Median", "median", 0},
		{"Multi-Krum (f=1)", "multi-krum", 1},
		{"Multi-Krum (f=4)", "multi-krum", 4},
		{"Bulyan (f=1)", "bulyan", 1},
		{"Bulyan (f=2)", "bulyan", 2},
		{"Draco (f=1)", "draco", 1},
		{"Draco (f=4)", "draco", 4},
	}
	profiles := []struct {
		title string
		dim   int
		flops float64
		batch int
	}{
		{"Figure 5(a): throughput, CNN (d=1.75M)", 1_756_426, nn.CIFARCNNFlopsPerSample, 100},
		{"Figure 5(b): throughput, ResNet50 (d=25.5M)", nn.ResNet50ParamCount, nn.ResNet50FlopsPerSample, 32},
	}
	for _, p := range profiles {
		rows := map[string][]string{}
		for _, cfg := range configs {
			tp := core.ThroughputScan(cfg.agg, cfg.f, counts, p.dim, p.flops, p.batch)
			row := make([]string, len(counts))
			for i, n := range counts {
				row[i] = fmt.Sprintf("%.2f", tp[n])
			}
			rows[cfg.label] = row
		}
		header := make([]string, len(counts))
		for i, n := range counts {
			header[i] = fmt.Sprintf("n=%d", n)
		}
		fmt.Print(metrics.Table(p.title+" (batches/sec)", rows, header))
		fmt.Println()
	}
}

// fig6 prints the impact of f on convergence.
func fig6(steps int) {
	for _, batch := range []int{250, 20} {
		rows := map[string][]string{}
		for _, cfg := range []struct {
			label, agg string
			f          int
		}{
			{"Multi-Krum (f=1)", "multi-krum", 1},
			{"Multi-Krum (f=4)", "multi-krum", 4},
			{"Bulyan (f=1)", "bulyan", 1},
			{"Bulyan (f=4)", "bulyan", 4},
			{"Draco (f=1)", "draco", 1},
			{"Draco (f=4)", "draco", 4},
		} {
			res := run(core.Config{
				Workers: 19, F: cfg.f, Aggregator: cfg.agg,
				Optimizer: "momentum", LR: 0.1, Batch: batch,
				Steps: steps, EvalEvery: 10,
			})
			writeSeries(fmt.Sprintf("fig6_b%d_%s_f%d", batch, cfg.agg, cfg.f), res.AccuracyVsTime)
			last, _ := res.AccuracyVsTime.Last()
			rows[cfg.label] = []string{
				fmt.Sprintf("%.3f", res.FinalAccuracy),
				fmt.Sprintf("%.1f", last.Time.Seconds()),
			}
		}
		fmt.Print(metrics.Table(
			fmt.Sprintf("Figure 6 (mini-batch %d): impact of f on convergence", batch),
			rows, []string{"final_acc", "sim_s_total"}))
		fmt.Println()
	}
}

// fig7 prints the corrupted-data comparison.
func fig7(steps int) {
	rows := map[string][]string{}
	for _, cfg := range []struct {
		label, agg string
		f          int
		corrupt    []int
	}{
		{"TF (non-Byzantine)", "tf", 0, nil},
		{"TF (corrupted worker)", "tf", 0, []int{2}},
		{"AggregaThor (f=1)", "multi-krum", 1, []int{2}},
	} {
		res := run(core.Config{
			Workers: 19, F: cfg.f, Aggregator: cfg.agg,
			Optimizer: "momentum", LR: 0.1, Batch: 250,
			Steps: steps, EvalEvery: 10,
			CorruptData: cfg.corrupt,
		})
		writeSeries("fig7_"+cfg.label, res.AccuracyVsTime)
		rows[cfg.label] = []string{
			fmt.Sprintf("%.3f", res.FinalAccuracy),
			fmt.Sprintf("%v", res.Diverged),
		}
	}
	fmt.Print(metrics.Table("Figure 7: impact of malformed input", rows,
		[]string{"final_acc", "diverged"}))
	fmt.Printf("(paper: TF intolerant to one corrupted worker; AggregaThor matches the non-Byzantine baseline)\n\n")
}

// fig8 prints the dropped-packets experiments.
func fig8(steps int) {
	// (a) 0% artificial drop: the three recoup strategies behave alike.
	rowsA := map[string][]string{}
	for _, cfg := range []struct {
		label, agg string
		f          int
		recoup     transport.RecoupPolicy
	}{
		{"TF (drop gradient)", "average", 0, transport.DropGradient},
		{"Selective Average", "selective-average", 0, transport.FillNaN},
		{"AggregaThor (f=8)", "multi-krum", 8, transport.FillRandom},
	} {
		res := run(core.Config{
			Workers: 19, F: cfg.f, Aggregator: cfg.agg,
			Optimizer: "momentum", LR: 0.1, Batch: 250,
			Steps: steps, EvalEvery: 10,
			UDPLinks: 8, DropRate: 0, Recoup: cfg.recoup,
			Protocol: simnet.UDP,
		})
		writeSeries("fig8a_"+cfg.agg, res.AccuracyVsTime)
		rowsA[cfg.label] = []string{fmt.Sprintf("%.3f", res.FinalAccuracy)}
	}
	fmt.Print(metrics.Table("Figure 8(a): UDP links, 0% artificial drop", rowsA,
		[]string{"final_acc"}))
	fmt.Println()

	// (b) 10% drop: lossy UDP clock vs TCP congestion collapse.
	rowsB := map[string][]string{}
	type resultRow struct {
		res   *core.Result
		label string
	}
	var results []resultRow
	for _, cfg := range []struct {
		label, agg string
		f          int
		proto      simnet.Protocol
		udpLinks   int
		recoup     transport.RecoupPolicy
	}{
		{"AggregaThor (f=8, lossyMPI)", "multi-krum", 8, simnet.UDP, 8, transport.FillRandom},
		{"TF (gRPC)", "tf", 0, simnet.TCP, 0, transport.DropGradient},
	} {
		res := run(core.Config{
			Workers: 19, F: cfg.f, Aggregator: cfg.agg,
			Optimizer: "momentum", LR: 0.1, Batch: 250,
			Steps: steps, EvalEvery: 10,
			UDPLinks: cfg.udpLinks, DropRate: 0.10, Recoup: cfg.recoup,
			Protocol: cfg.proto,
		})
		writeSeries("fig8b_"+cfg.agg, res.AccuracyVsTime)
		results = append(results, resultRow{res, cfg.label})
		target := 0.3 * res.AccuracyVsTime.MaxValue() / 0.75 // 30% absolute in the paper's scale
		tTo, ok := res.AccuracyVsTime.TimeToValue(target)
		toStr := "n/a"
		if ok {
			toStr = fmt.Sprintf("%.1f", tTo.Seconds())
		}
		last, _ := res.AccuracyVsTime.Last()
		rowsB[cfg.label] = []string{
			toStr,
			fmt.Sprintf("%.1f", last.Time.Seconds()),
			fmt.Sprintf("%.3f", res.FinalAccuracy),
		}
	}
	fmt.Print(metrics.Table("Figure 8(b): 10% drop rate", rowsB,
		[]string{"s_to_30pct", "sim_s_total", "final_acc"}))
	if len(results) == 2 {
		a, _ := results[0].res.AccuracyVsTime.Last()
		b, _ := results[1].res.AccuracyVsTime.Last()
		if a.Time > 0 {
			fmt.Printf("(UDP finishes the same schedule %.1fx faster; paper reports >6x to 30%% accuracy)\n", float64(b.Time)/float64(a.Time))
		}
	}
	fmt.Println()
}

// costAnalysis reports the §4.2 cost-model scaling.
func costAnalysis() {
	rows := map[string][]string{}
	for _, agg := range []string{"average", "median", "multi-krum", "bulyan", "draco"} {
		row := []string{}
		for _, n := range []int{9, 19} {
			f := (n - 3) / 4
			row = append(row, fmt.Sprintf("%.3f", simnet.ModelAggregation(agg, n, f, 1_756_426).Seconds()))
		}
		rows[agg] = row
	}
	fmt.Print(metrics.Table("§4.2 cost analysis: modelled aggregation seconds (d=1.75M)",
		rows, []string{"n=9", "n=19"}))
	fmt.Printf("(O(n²d) for Multi-Krum/Bulyan; linear-in-n decode for Draco)\n")
	_ = time.Now
}
