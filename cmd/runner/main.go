// Command runner launches one training session, mirroring the original
// AggregaThor runner.py command line:
//
//	go run ./cmd/runner \
//	  --experiment features-mlp --aggregator multi-krum --nb-workers 19 \
//	  --f 4 --optimizer rmsprop --learning-rate 0.001 --batch-size 100 \
//	  --max-step 200 --evaluation-delta 20
//
// Pass --aggregator "" or --experiment "" to list the available choices
// (matching the original tool's behaviour).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aggregathor/internal/attack"
	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

func main() {
	var (
		experiment = flag.String("experiment", "features-mlp", "model+dataset preset (empty to list)")
		aggregator = flag.String("aggregator", "multi-krum", "gradient aggregation rule (empty to list; 'draco' and 'tf' also accepted)")
		nbWorkers  = flag.Int("nb-workers", 19, "number of workers n")
		declaredF  = flag.Int("f", 4, "declared Byzantine tolerance f")
		optimizer  = flag.String("optimizer", "rmsprop", "update rule")
		lr         = flag.Float64("learning-rate", 1e-3, "initial learning rate")
		batch      = flag.Int("batch-size", 100, "per-worker mini-batch size")
		maxStep    = flag.Int("max-step", 200, "number of model updates")
		evalDelta  = flag.Int("evaluation-delta", 20, "steps between accuracy evaluations")
		l1         = flag.Float64("l1-regularize", 0, "L1 regularisation weight")
		l2         = flag.Float64("l2-regularize", 0, "L2 regularisation weight")
		attackSpec = flag.String("attack", "", "worker attacks as id:name[,id:name...] (empty to list names with 'list')")
		corrupt    = flag.String("corrupt-data", "", "comma-separated worker ids with poisoned samplers")
		vanilla    = flag.Bool("vanilla", false, "run the unpatched (vulnerable) server")
		hijack     = flag.String("hijack", "", "comma-separated worker ids attempting remote parameter writes")
		udpLinks   = flag.Int("udp-links", 0, "number of worker links over lossy UDP")
		dropRate   = flag.Float64("drop-rate", 0, "artificial packet drop probability on UDP links")
		recoup     = flag.String("recoup", "fill-random", "lost-coordinate policy: drop-gradient|fill-nan|fill-random")
		udpClock   = flag.Bool("udp-clock", false, "cost the network as UDP instead of TCP")
		seed       = flag.Int64("seed", 1, "experiment seed")
		measureAgg = flag.Bool("measure-agg", false, "measure real GAR wall time for the simulated clock")
		replicas   = flag.Int("server-replicas", 1, "state-machine-replicate the parameter server (>1 enables the §6 extension)")
		byzReps    = flag.String("byzantine-replicas", "", "comma-separated lying server replica ids")
		ckptPath   = flag.String("checkpoint", "", "checkpoint file path (resumes if present)")
		ckptEvery  = flag.Int("checkpoint-period", 0, "steps between checkpoints (0 = final only)")
	)
	flag.Parse()

	if *experiment == "" {
		fmt.Println("available experiments:")
		for _, e := range core.Experiments() {
			fmt.Printf("  %s (cost dim %d)\n", e.Name, e.CostDim)
		}
		return
	}
	if *aggregator == "" {
		fmt.Printf("available aggregators: %s (plus: draco, tf)\n", strings.Join(gar.Names(), ", "))
		return
	}
	if *attackSpec == "list" {
		fmt.Printf("available attacks: %s\n", strings.Join(attack.Names(), ", "))
		fmt.Printf("available optimizers: %s\n", strings.Join(opt.Names(), ", "))
		return
	}

	attacks, err := parseAttacks(*attackSpec)
	if err != nil {
		fatal(err)
	}
	policy, err := parseRecoup(*recoup)
	if err != nil {
		fatal(err)
	}
	proto := simnet.TCP
	if *udpClock {
		proto = simnet.UDP
	}
	cfg := core.Config{
		Experiment: *experiment,
		Aggregator: *aggregator,
		F:          *declaredF,
		Workers:    *nbWorkers,
		Batch:      *batch,
		Optimizer:  *optimizer,
		LR:         *lr,
		L1:         *l1,
		L2:         *l2,
		Steps:      *maxStep,
		EvalEvery:  *evalDelta,
		Attacks:    attacks,
		Vanilla:    *vanilla,
		UDPLinks:   *udpLinks,
		DropRate:   *dropRate,
		Recoup:     policy,
		Protocol:   proto,
		Seed:       *seed,
		MeasureAgg: *measureAgg,
	}
	if cfg.CorruptData, err = parseIDs(*corrupt); err != nil {
		fatal(err)
	}
	if cfg.HijackWorkers, err = parseIDs(*hijack); err != nil {
		fatal(err)
	}
	cfg.ServerReplicas = *replicas
	if cfg.ByzantineReplicas, err = parseIDs(*byzReps); err != nil {
		fatal(err)
	}
	cfg.CheckpointPath = *ckptPath
	cfg.CheckpointEvery = *ckptEvery

	fmt.Printf("experiment=%s aggregator=%s n=%d f=%d optimizer=%s lr=%g batch=%d steps=%d\n",
		cfg.Experiment, cfg.Aggregator, cfg.Workers, cfg.F, cfg.Optimizer, cfg.LR, cfg.Batch, cfg.Steps)
	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %-12s %-10s %-10s\n", "sim_time", "step", "accuracy", "loss")
	for i, p := range res.AccuracyVsStep.Points {
		loss := 0.0
		if i < len(res.LossVsStep.Points) {
			loss = res.LossVsStep.Points[i].Value
		}
		fmt.Printf("%-10.1f %-12d %-10.4f %-10.4f\n", p.Time.Seconds(), p.Step, p.Value, loss)
	}
	fmt.Printf("final accuracy: %.4f\n", res.FinalAccuracy)
	fmt.Printf("throughput: %.2f gradients/s (%.2f updates/s)\n",
		res.Throughput.GradientsPerSecond(), res.Throughput.BatchesPerSecond())
	fmt.Printf("latency breakdown: compute+comm %.3fs, aggregation %.3fs (%.0f%% share)\n",
		res.Breakdown.ComputeComm.Seconds(), res.Breakdown.Aggregation.Seconds(),
		res.Breakdown.AggregationShare()*100)
	if res.SkippedRounds > 0 {
		fmt.Printf("skipped rounds (quorum lost): %d\n", res.SkippedRounds)
	}
	if res.Hijacked {
		fmt.Println("WARNING: a Byzantine worker overwrote the parameters (vanilla mode)")
	}
	if res.Diverged {
		fmt.Println("WARNING: training diverged (non-finite parameters)")
	}
	if res.ResumedFromStep > 0 {
		fmt.Printf("resumed from checkpointed step %d\n", res.ResumedFromStep)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runner:", err)
	os.Exit(1)
}

func parseAttacks(spec string) (map[int]string, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[int]string{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad attack spec %q (want id:name)", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil {
			return nil, fmt.Errorf("bad worker id in %q: %w", part, err)
		}
		out[id] = strings.TrimSpace(kv[1])
	}
	return out, nil
}

func parseIDs(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad worker id %q: %w", part, err)
		}
		out = append(out, id)
	}
	return out, nil
}

func parseRecoup(name string) (transport.RecoupPolicy, error) {
	switch name {
	case "drop-gradient":
		return transport.DropGradient, nil
	case "fill-nan":
		return transport.FillNaN, nil
	case "fill-random":
		return transport.FillRandom, nil
	default:
		return 0, fmt.Errorf("unknown recoup policy %q", name)
	}
}
