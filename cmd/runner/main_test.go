package main

import (
	"testing"

	"aggregathor/internal/transport"
)

func TestParseAttacks(t *testing.T) {
	got, err := parseAttacks("3:omniscient, 7:random")
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != "omniscient" || got[7] != "random" {
		t.Fatalf("got %v", got)
	}
	if got, err := parseAttacks(""); err != nil || got != nil {
		t.Fatal("empty spec must yield nil, nil")
	}
	for _, bad := range []string{"3", "x:random", "3:"} {
		if _, err := parseAttacks(bad); err == nil && bad != "3:" {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestParseIDs(t *testing.T) {
	got, err := parseIDs("1, 2,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
	if got, err := parseIDs(""); err != nil || got != nil {
		t.Fatal("empty spec must yield nil, nil")
	}
	if _, err := parseIDs("1,x"); err == nil {
		t.Fatal("bad id accepted")
	}
}

func TestParseRecoup(t *testing.T) {
	cases := map[string]transport.RecoupPolicy{
		"drop-gradient": transport.DropGradient,
		"fill-nan":      transport.FillNaN,
		"fill-random":   transport.FillRandom,
	}
	for name, want := range cases {
		got, err := parseRecoup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("parseRecoup(%q) = %v", name, got)
		}
	}
	if _, err := parseRecoup("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
